//! Reverse-mode automatic differentiation on a linear tape.
//!
//! A [`Tape`] records every operation eagerly (define-by-run); calling
//! [`Tape::backward`] walks the tape in reverse accumulating gradients.
//! The op set is exactly what RouteNet's message passing needs, including
//! the two structural ops that encode the graph: [`Tape::gather_rows`]
//! (read link states along each path) and [`Tape::scatter_add_rows`]
//! (aggregate per-hop messages into per-link inboxes).
//!
//! Every op's gradient is validated against central finite differences in
//! this crate's test suite.
//!
//! # Arena reuse
//!
//! A tape can be recycled across forward/backward passes with
//! [`Tape::reset`]: node value buffers are drained into an internal pool and
//! handed back out by the next pass's ops in allocation order. Because a
//! training loop replays the same op sequence every iteration, the pool
//! reaches a steady state after the first pass and the hot loop performs no
//! further value-buffer heap allocation. See DESIGN.md "Batched execution &
//! memory arenas".
//!
//! # Segment ops
//!
//! The `seg_*` and `segment_*` ops operate on tensors whose rows are the
//! concatenation of several samples' row blocks (described by a
//! [`SegmentPlan`]). Their forward values are bitwise identical to the
//! unsegmented ops; what differs is the backward pass, which keeps
//! per-segment gradient partials separate so a batched backward associates
//! floating-point sums exactly like running the samples one at a time.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::plan::{IndexPlan, SegmentPlan};
use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    /// Leaf: input or parameter. No gradient propagation (gradients are
    /// still *accumulated* into leaves so the optimizer can read them).
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    /// `a + broadcast(b)` where `b` is `1 x cols`.
    AddRow(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `alpha * a + beta` elementwise.
    Affine(Var, f64, f64),
    /// Elementwise product with a constant tensor (no grad to the constant).
    MulConst(Var, Tensor),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    ConcatCols(Var, Var),
    /// `out[i, :] = a[idx[i], :]`.
    GatherRows(Var, Vec<usize>),
    /// `out[idx[i], :] += a[i, :]`, out has `out_rows` rows.
    ScatterAddRows(Var, Vec<usize>),
    /// `gather_rows` with a shared precomputed index plan (no copy per push).
    GatherRowsP(Var, IndexPlan),
    /// `scatter_add_rows` with a shared precomputed index plan.
    ScatterAddRowsP(Var, IndexPlan),
    /// `mul_const` with a shared constant (no tensor copy per push).
    MulConstShared(Var, Arc<Tensor>),
    /// Batched matmul against a shared rhs; backward keeps per-segment
    /// weight-gradient partials separate (forward == MatMul bitwise).
    SegMatMul(Var, Var, SegmentPlan),
    /// Batched bias add; backward keeps per-segment bias partials separate
    /// (forward == AddRow bitwise).
    SegAddRow(Var, Var, SegmentPlan),
    /// `out[s, :] = sum of a's rows in segment s` (ascending row order).
    SegmentSum(Var, SegmentPlan),
    /// `out[s, :] = mean of a's rows in segment s`.
    SegmentMean(Var, SegmentPlan),
    /// Per-segment mean squared error: `out[s, 0] = mse over segment s`.
    SegMse(Var, Tensor, SegmentPlan),
    SumAll(Var),
    MeanAll(Var),
    /// Mean squared error against a constant target.
    Mse(Var, Tensor),
    /// Mean absolute error against a constant target.
    Mae(Var, Tensor),
}

struct Node {
    op: Op,
    value: Tensor,
}

/// A linear autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    poisoned: bool,
    /// Recycled value buffers, FIFO. `reset` drains node values here in
    /// allocation order; `alloc_tensor` pops front, so a replayed op
    /// sequence gets each buffer back at exactly the right capacity.
    pool: VecDeque<Vec<f64>>,
    reuse_hits: u64,
    reuse_misses: u64,
    max_nodes: usize,
    max_scalars: usize,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Clear the tape for the next forward pass, recycling every node's
    /// value buffer into the arena pool. High-water stats and reuse
    /// counters survive the reset (they are cumulative telemetry).
    pub fn reset(&mut self) {
        self.max_nodes = self.max_nodes.max(self.nodes.len());
        self.max_scalars = self.max_scalars.max(self.value_scalars());
        for node in self.nodes.drain(..) {
            self.pool.push_back(node.value.into_data());
        }
        self.poisoned = false;
    }

    /// Allocate (or recycle) a zeroed `rows x cols` value tensor.
    fn alloc_tensor(&mut self, rows: usize, cols: usize) -> Tensor {
        match self.pool.pop_front() {
            Some(buf) => {
                self.reuse_hits += 1;
                Tensor::from_buffer(rows, cols, buf)
            }
            None => {
                self.reuse_misses += 1;
                Tensor::zeros(rows, cols)
            }
        }
    }

    /// Bound the arena pool to at most `max_buffers` recycled buffers,
    /// dropping the *largest* ones first. A training loop replays one op
    /// sequence and wants the whole pool; a long-lived server replays
    /// variable-size batches, so after one large burst the pool would pin
    /// the high-water memory forever. Dropping the largest buffers releases
    /// the burst memory while keeping warm buffers for steady-state batches.
    pub fn trim_pool(&mut self, max_buffers: usize) {
        if self.pool.len() <= max_buffers {
            return;
        }
        let mut bufs: Vec<Vec<f64>> = self.pool.drain(..).collect();
        bufs.sort_by_key(|b| b.capacity());
        bufs.truncate(max_buffers);
        self.pool.extend(bufs);
    }

    /// Number of recycled value buffers currently held by the arena pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Cumulative count of value buffers recycled from the arena pool.
    pub fn reuse_hits(&self) -> u64 {
        self.reuse_hits
    }

    /// Cumulative count of value buffers that had to be freshly allocated.
    pub fn reuse_misses(&self) -> u64 {
        self.reuse_misses
    }

    /// High-water node count across all resets (plus the live tape).
    pub fn max_nodes(&self) -> usize {
        self.max_nodes.max(self.nodes.len())
    }

    /// High-water value-scalar count across all resets (plus the live tape).
    pub fn max_scalars(&self) -> usize {
        self.max_scalars.max(self.value_scalars())
    }

    /// True if any recorded node produced a non-finite value. A poisoned
    /// tape still evaluates and differentiates (NaN/inf propagate), so the
    /// caller — e.g. the trainer's divergence-recovery loop — can observe
    /// the blow-up and roll back instead of crashing mid-run.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total number of scalars held in node values — the working-set size
    /// of one recorded forward pass. Together with [`Tape::len`] this is
    /// the telemetry probe for per-sample autodiff cost: node count tracks
    /// op dispatch overhead, scalar count tracks memory traffic.
    pub fn value_scalars(&self) -> usize {
        self.nodes.iter().map(|n| n.value.len()).sum()
    }

    /// Value of a node.
    ///
    /// INVARIANT: every `Var` is minted by `push` on this tape and therefore
    /// indexes into `nodes`; tapes are not interchangeable across sessions.
    pub fn value(&self, v: Var) -> &Tensor {
        debug_assert!(v.0 < self.nodes.len(), "Var from a different tape");
        &self.nodes[v.0].value // lint: allow(panic, reason = "Var minted by this tape, see INVARIANT above")
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        // Non-finite values are a runtime condition (divergence), not a
        // programming error: record the poisoning instead of asserting so
        // recovery loops can roll back to a good state.
        if !value.all_finite() {
            self.poisoned = true;
        }
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Register a leaf (input or parameter).
    ///
    /// The caller-provided tensor enters the tape as-is; its buffer joins
    /// the arena pool at the next `reset`. Loops that reset the tape should
    /// prefer [`Tape::leaf_copied`], which *draws* the buffer from the pool
    /// and therefore keeps pool pushes and pops balanced.
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(Op::Leaf, t)
    }

    /// Register a leaf by copying `src` into an arena-recycled buffer.
    pub fn leaf_copied(&mut self, src: &Tensor) -> Var {
        let mut t = self.alloc_tensor(src.rows(), src.cols());
        t.copy_from(src);
        self.push(Op::Leaf, t)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let ar = self.value(a).rows();
        let bc = self.value(b).cols();
        let mut v = self.alloc_tensor(ar, bc);
        self.value(a).matmul_into(self.value(b), &mut v);
        self.push(Op::MatMul(a, b), v)
    }

    /// Elementwise sum of two same-shaped tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = self.value(a).shape();
        assert_eq!(self.value(b).shape(), (r, c), "add shape mismatch");
        let mut v = self.alloc_tensor(r, c);
        let av = self.value(a);
        let bv = self.value(b);
        for ((o, &x), &y) in v.data_mut().iter_mut().zip(av.data()).zip(bv.data()) {
            *o = x + y;
        }
        self.push(Op::Add(a, b), v)
    }

    /// Add a `1 x cols` row vector to every row of `a` (bias add).
    pub fn add_row(&mut self, a: Var, b: Var) -> Var {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(b).shape();
        assert_eq!(br, 1, "add_row rhs must be a row vector");
        assert_eq!(ac, bc, "add_row width mismatch");
        let mut v = self.alloc_tensor(ar, ac);
        let av = self.value(a);
        let bv = self.value(b);
        for r in 0..ar {
            for c in 0..ac {
                v.set(r, c, av.get(r, c) + bv.get(0, c));
            }
        }
        self.push(Op::AddRow(a, b), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = self.value(a).shape();
        assert_eq!(self.value(b).shape(), (r, c), "sub shape mismatch");
        let mut v = self.alloc_tensor(r, c);
        let av = self.value(a);
        let bv = self.value(b);
        for ((o, &x), &y) in v.data_mut().iter_mut().zip(av.data()).zip(bv.data()) {
            *o = x - y;
        }
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = self.value(a).shape();
        assert_eq!(self.value(b).shape(), (r, c), "mul shape mismatch");
        let mut v = self.alloc_tensor(r, c);
        let av = self.value(a);
        let bv = self.value(b);
        for ((o, &x), &y) in v.data_mut().iter_mut().zip(av.data()).zip(bv.data()) {
            *o = x * y;
        }
        self.push(Op::Mul(a, b), v)
    }

    /// `alpha * a + beta` elementwise.
    pub fn affine(&mut self, a: Var, alpha: f64, beta: f64) -> Var {
        let (r, c) = self.value(a).shape();
        let mut v = self.alloc_tensor(r, c);
        let av = self.value(a);
        for (o, &x) in v.data_mut().iter_mut().zip(av.data()) {
            *o = alpha * x + beta;
        }
        self.push(Op::Affine(a, alpha, beta), v)
    }

    /// `1 - a` elementwise (GRU gate complement).
    pub fn one_minus(&mut self, a: Var) -> Var {
        self.affine(a, -1.0, 1.0)
    }

    /// Elementwise product with a constant (no gradient flows into `c`).
    pub fn mul_const(&mut self, a: Var, c: &Tensor) -> Var {
        let (r, cc) = self.value(a).shape();
        assert_eq!(c.shape(), (r, cc), "mul_const shape mismatch");
        let mut v = self.alloc_tensor(r, cc);
        let av = self.value(a);
        for ((o, &x), &y) in v.data_mut().iter_mut().zip(av.data()).zip(c.data()) {
            *o = x * y;
        }
        self.push(Op::MulConst(a, c.clone()), v)
    }

    /// `mul_const` against a shared constant: pushing the op bumps an `Arc`
    /// refcount instead of copying the tensor. Use for masks/weights that
    /// are applied every pass (e.g. position keep-masks in the batched
    /// kernel). Gradient behaviour is identical to [`Tape::mul_const`].
    pub fn mul_const_shared(&mut self, a: Var, c: &Arc<Tensor>) -> Var {
        let (r, cc) = self.value(a).shape();
        assert_eq!(c.shape(), (r, cc), "mul_const_shared shape mismatch");
        let mut v = self.alloc_tensor(r, cc);
        let av = self.value(a);
        for ((o, &x), &y) in v.data_mut().iter_mut().zip(av.data()).zip(c.data()) {
            *o = x * y;
        }
        self.push(Op::MulConstShared(a, Arc::clone(c)), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let (r, c) = self.value(a).shape();
        let mut v = self.alloc_tensor(r, c);
        let av = self.value(a);
        for (o, &x) in v.data_mut().iter_mut().zip(av.data()) {
            *o = 1.0 / (1.0 + (-x).exp());
        }
        self.push(Op::Sigmoid(a), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let (r, c) = self.value(a).shape();
        let mut v = self.alloc_tensor(r, c);
        let av = self.value(a);
        for (o, &x) in v.data_mut().iter_mut().zip(av.data()) {
            *o = x.tanh();
        }
        self.push(Op::Tanh(a), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let (r, c) = self.value(a).shape();
        let mut v = self.alloc_tensor(r, c);
        let av = self.value(a);
        for (o, &x) in v.data_mut().iter_mut().zip(av.data()) {
            *o = x.max(0.0);
        }
        self.push(Op::Relu(a), v)
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (r, ac) = self.value(a).shape();
        let (br, bc) = self.value(b).shape();
        assert_eq!(r, br, "concat_cols row mismatch");
        let mut v = self.alloc_tensor(r, ac + bc);
        let av = self.value(a);
        let bv = self.value(b);
        for i in 0..r {
            for j in 0..ac {
                v.set(i, j, av.get(i, j));
            }
            for j in 0..bc {
                v.set(i, ac + j, bv.get(i, j));
            }
        }
        self.push(Op::ConcatCols(a, b), v)
    }

    /// Row gather: `out[i, :] = a[idx[i], :]`. Indices may repeat.
    pub fn gather_rows(&mut self, a: Var, idx: Vec<usize>) -> Var {
        let (rows, cols) = self.value(a).shape();
        for &i in &idx {
            assert!(i < rows, "gather index {i} out of {rows} rows");
        }
        let mut v = self.alloc_tensor(idx.len(), cols);
        let av = self.value(a);
        for (r, &i) in idx.iter().enumerate() {
            v.copy_row_from(r, av, i);
        }
        self.push(Op::GatherRows(a, idx), v)
    }

    /// [`Tape::gather_rows`] with a precomputed shared index plan: pushing
    /// the op bumps an `Arc` refcount instead of copying the index vector.
    pub fn gather_rows_plan(&mut self, a: Var, plan: &IndexPlan) -> Var {
        let (rows, cols) = self.value(a).shape();
        for &i in plan.indices() {
            assert!(i < rows, "gather index {i} out of {rows} rows");
        }
        let mut v = self.alloc_tensor(plan.len(), cols);
        let av = self.value(a);
        for (r, &i) in plan.indices().iter().enumerate() {
            v.copy_row_from(r, av, i);
        }
        self.push(Op::GatherRowsP(a, plan.clone()), v)
    }

    /// Row scatter-add: `out[idx[i], :] += a[i, :]` into a fresh
    /// `out_rows x cols` zero tensor. The message-aggregation primitive.
    pub fn scatter_add_rows(&mut self, a: Var, idx: Vec<usize>, out_rows: usize) -> Var {
        let (in_rows, cols) = self.value(a).shape();
        assert_eq!(idx.len(), in_rows, "one index per input row required");
        for &i in &idx {
            assert!(i < out_rows, "scatter index {i} out of {out_rows} rows");
        }
        let mut v = self.alloc_tensor(out_rows, cols);
        let av = self.value(a);
        for (r, &i) in idx.iter().enumerate() {
            for c in 0..cols {
                v.set(i, c, v.get(i, c) + av.get(r, c));
            }
        }
        self.push(Op::ScatterAddRows(a, idx), v)
    }

    /// [`Tape::scatter_add_rows`] with a precomputed shared index plan.
    pub fn scatter_add_rows_plan(&mut self, a: Var, plan: &IndexPlan, out_rows: usize) -> Var {
        let (in_rows, cols) = self.value(a).shape();
        assert_eq!(plan.len(), in_rows, "one index per input row required");
        for &i in plan.indices() {
            assert!(i < out_rows, "scatter index {i} out of {out_rows} rows");
        }
        let mut v = self.alloc_tensor(out_rows, cols);
        let av = self.value(a);
        for (r, &i) in plan.indices().iter().enumerate() {
            for c in 0..cols {
                v.set(i, c, v.get(i, c) + av.get(r, c));
            }
        }
        self.push(Op::ScatterAddRowsP(a, plan.clone()), v)
    }

    /// Batched matrix product `a * b` where `a`'s rows are the concatenation
    /// of per-sample row blocks (per `seg`) and `b` is a weight shared by
    /// every sample. The forward value is bitwise identical to
    /// [`Tape::matmul`]; the backward pass accumulates `b`'s gradient into
    /// per-segment slots (see [`Gradients::seg_get`]) so each sample's
    /// weight gradient is exactly what a per-sample tape would produce.
    pub fn seg_matmul(&mut self, a: Var, b: Var, seg: &SegmentPlan) -> Var {
        let ar = self.value(a).rows();
        assert_eq!(seg.total(), ar, "seg_matmul segment coverage mismatch");
        let bc = self.value(b).cols();
        let mut v = self.alloc_tensor(ar, bc);
        self.value(a).matmul_into(self.value(b), &mut v);
        self.push(Op::SegMatMul(a, b, seg.clone()), v)
    }

    /// Batched bias add (`add_row` over concatenated row blocks). Forward is
    /// bitwise identical to [`Tape::add_row`]; backward keeps per-segment
    /// bias-gradient partials separate, like [`Tape::seg_matmul`].
    pub fn seg_add_row(&mut self, a: Var, b: Var, seg: &SegmentPlan) -> Var {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(b).shape();
        assert_eq!(br, 1, "seg_add_row rhs must be a row vector");
        assert_eq!(ac, bc, "seg_add_row width mismatch");
        assert_eq!(seg.total(), ar, "seg_add_row segment coverage mismatch");
        let mut v = self.alloc_tensor(ar, ac);
        let av = self.value(a);
        let bv = self.value(b);
        for r in 0..ar {
            for c in 0..ac {
                v.set(r, c, av.get(r, c) + bv.get(0, c));
            }
        }
        self.push(Op::SegAddRow(a, b, seg.clone()), v)
    }

    /// Segment sum: `out[s, :]` is the column-wise sum of `a`'s rows in
    /// segment `s`, accumulated in ascending row order (the determinism
    /// contract — see DESIGN.md). Empty segments yield zero rows.
    pub fn segment_sum(&mut self, a: Var, seg: &SegmentPlan) -> Var {
        let (ar, cols) = self.value(a).shape();
        assert_eq!(seg.total(), ar, "segment_sum segment coverage mismatch");
        let n_seg = seg.n_segments();
        let mut v = self.alloc_tensor(n_seg, cols);
        let av = self.value(a);
        for s in 0..n_seg {
            let (lo, hi) = seg.range(s);
            for r in lo..hi {
                for c in 0..cols {
                    v.set(s, c, v.get(s, c) + av.get(r, c));
                }
            }
        }
        self.push(Op::SegmentSum(a, seg.clone()), v)
    }

    /// Segment mean: `out[s, :]` is the column-wise mean of `a`'s rows in
    /// segment `s`. Panics on empty segments (a mean over zero rows is
    /// undefined; pad or filter before calling).
    pub fn segment_mean(&mut self, a: Var, seg: &SegmentPlan) -> Var {
        let (ar, cols) = self.value(a).shape();
        assert_eq!(seg.total(), ar, "segment_mean segment coverage mismatch");
        let n_seg = seg.n_segments();
        let mut v = self.alloc_tensor(n_seg, cols);
        let av = self.value(a);
        for s in 0..n_seg {
            let (lo, hi) = seg.range(s);
            assert!(hi > lo, "segment_mean requires non-empty segments");
            let n = (hi - lo) as f64;
            debug_assert!(n > 0.0);
            for r in lo..hi {
                for c in 0..cols {
                    v.set(s, c, v.get(s, c) + av.get(r, c));
                }
            }
            for c in 0..cols {
                v.set(s, c, v.get(s, c) / n);
            }
        }
        self.push(Op::SegmentMean(a, seg.clone()), v)
    }

    /// Per-segment mean squared error: `out[s, 0]` is the MSE between
    /// `pred`'s and `target`'s rows in segment `s`, folded in flat
    /// row-major order — exactly the fold [`Tape::mse`] performs on one
    /// sample's rows, so batched per-sample losses are bitwise identical
    /// to per-sample `mse` calls. Panics on empty segments.
    pub fn seg_mse(&mut self, pred: Var, target: &Tensor, seg: &SegmentPlan) -> Var {
        let (pr, cols) = self.value(pred).shape();
        assert_eq!(target.shape(), (pr, cols), "seg_mse shape mismatch");
        assert_eq!(seg.total(), pr, "seg_mse segment coverage mismatch");
        let n_seg = seg.n_segments();
        let mut v = self.alloc_tensor(n_seg, 1);
        let p = self.value(pred);
        for s in 0..n_seg {
            let (lo, hi) = seg.range(s);
            assert!(hi > lo, "seg_mse requires non-empty segments");
            let n = ((hi - lo) * cols) as f64;
            debug_assert!(n > 0.0, "segments are non-empty and cols > 0");
            let loss = p.data()[lo * cols..hi * cols] // lint: allow(panic, reason = "segment offsets validated against pred rows above")
                .iter()
                .zip(&target.data()[lo * cols..hi * cols]) // lint: allow(panic, reason = "target shape equals pred shape, asserted above")
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f64>()
                / n;
            v.set(s, 0, loss);
        }
        self.push(Op::SegMse(pred, target.clone(), seg.clone()), v)
    }

    /// Sum of all elements (`1 x 1`).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.value(a).sum();
        let mut v = self.alloc_tensor(1, 1);
        v.set(0, 0, s);
        self.push(Op::SumAll(a), v)
    }

    /// Mean of all elements (`1 x 1`).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let n = av.len() as f64;
        debug_assert!(n > 0.0, "mean_all on an empty tensor would be NaN");
        let m = av.sum() / n;
        let mut v = self.alloc_tensor(1, 1);
        v.set(0, 0, m);
        self.push(Op::MeanAll(a), v)
    }

    /// Mean squared error between `pred` and a constant `target` (`1 x 1`).
    pub fn mse(&mut self, pred: Var, target: &Tensor) -> Var {
        assert_eq!(
            self.value(pred).shape(),
            target.shape(),
            "mse shape mismatch"
        );
        let mut v = self.alloc_tensor(1, 1);
        let p = self.value(pred);
        let n = p.len() as f64;
        debug_assert!(n > 0.0, "mse on an empty tensor would be NaN");
        let loss = p
            .data()
            .iter()
            .zip(target.data())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
            / n;
        v.set(0, 0, loss);
        self.push(Op::Mse(pred, target.clone()), v)
    }

    /// Mean absolute error between `pred` and a constant `target` (`1 x 1`).
    pub fn mae(&mut self, pred: Var, target: &Tensor) -> Var {
        assert_eq!(
            self.value(pred).shape(),
            target.shape(),
            "mae shape mismatch"
        );
        let mut v = self.alloc_tensor(1, 1);
        let p = self.value(pred);
        let n = p.len() as f64;
        debug_assert!(n > 0.0, "mae on an empty tensor would be NaN");
        let loss = p
            .data()
            .iter()
            .zip(target.data())
            .map(|(&a, &b)| (a - b).abs())
            .sum::<f64>()
            / n;
        v.set(0, 0, loss);
        self.push(Op::Mae(pred, target.clone()), v)
    }

    /// Reverse pass from `loss` (must be `1 x 1`). Returns one gradient slot
    /// per node; leaves hold the accumulated parameter gradients.
    /// INVARIANT: `grads` has exactly one slot per tape node, so every node
    /// id (and every `Var` recorded inside an op, which predates its node)
    /// indexes into it.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        debug_assert!(loss.0 < self.nodes.len(), "loss Var from a different tape");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        let mut seg: Vec<Option<Vec<Option<Tensor>>>> =
            (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::from_vec(1, 1, vec![1.0])); // lint: allow(panic, reason = "one grad slot per node, see INVARIANT above")
        for i in (0..=loss.0).rev() {
            // lint: allow(panic, reason = "i <= loss.0 < nodes.len() == grads.len()")
            let Some(g) = grads[i].take() else { continue };
            debug_assert!(
                self.poisoned || g.all_finite(),
                "non-finite gradient reached node {i} on a clean tape"
            );
            self.accumulate(i, &g, &mut grads, &mut seg);
            grads[i] = Some(g); // lint: allow(panic, reason = "same in-bounds index as the take above")
        }
        Gradients { grads, seg }
    }

    /// INVARIANT: callers pass `i < self.nodes.len()` and `grads`/`seg`
    /// slices with one slot per node; ops only reference `Var`s older than
    /// their own node, so `v.0 < i` for every operand.
    fn accumulate(
        &self,
        i: usize,
        g: &Tensor,
        grads: &mut [Option<Tensor>],
        seg: &mut [Option<Vec<Option<Tensor>>>],
    ) {
        debug_assert!(i < self.nodes.len() && grads.len() == self.nodes.len());
        let poisoned = self.poisoned;
        let add_to = move |grads: &mut [Option<Tensor>], v: Var, delta: Tensor| {
            debug_assert!(
                poisoned || delta.all_finite(),
                "non-finite partial for node {} on a clean tape",
                v.0
            );
            // lint: allow(panic, reason = "operand Vars predate node i, see INVARIANT above")
            match &mut grads[v.0] {
                Some(existing) => existing.add_scaled(&delta, 1.0),
                slot @ None => *slot = Some(delta),
            }
        };
        // Per-segment counterpart of `add_to`: partials land in the seg slot
        // for (node, segment) with the same Some/None accumulate semantics,
        // so each segment's fold is exactly the per-sample fold.
        let add_seg = move |seg: &mut [Option<Vec<Option<Tensor>>>],
                            v: Var,
                            s: usize,
                            n_seg: usize,
                            delta: Tensor| {
            debug_assert!(
                poisoned || delta.all_finite(),
                "non-finite seg partial for node {} on a clean tape",
                v.0
            );
            // lint: allow(panic, reason = "operand Vars predate node i, see INVARIANT above")
            let slots = seg[v.0].get_or_insert_with(|| (0..n_seg).map(|_| None).collect());
            debug_assert_eq!(slots.len(), n_seg, "segment count mismatch across ops");
            // lint: allow(panic, reason = "s < n_seg == slots.len() by construction")
            match &mut slots[s] {
                Some(existing) => existing.add_scaled(&delta, 1.0),
                slot @ None => *slot = Some(delta),
            }
        };
        let node = &self.nodes[i]; // lint: allow(panic, reason = "i bounds-checked by the debug_assert above, see INVARIANT")
        match &node.op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let av = self.value(*a);
                let bv = self.value(*b);
                add_to(grads, *a, g.matmul(&bv.transpose()));
                // matmul_t_rows over the full row range is bitwise identical
                // to `av.transpose().matmul(g)` minus the transpose copy.
                add_to(grads, *b, av.matmul_t_rows(g, 0, av.rows()));
            }
            Op::Add(a, b) => {
                add_to(grads, *a, g.clone());
                add_to(grads, *b, g.clone());
            }
            Op::AddRow(a, b) => {
                add_to(grads, *a, g.clone());
                // column sums
                let mut gb = Tensor::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for c in 0..g.cols() {
                        gb.set(0, c, gb.get(0, c) + g.get(r, c));
                    }
                }
                add_to(grads, *b, gb);
            }
            Op::Sub(a, b) => {
                add_to(grads, *a, g.clone());
                add_to(grads, *b, g.map(|x| -x));
            }
            Op::Mul(a, b) => {
                let av = self.value(*a).clone();
                let bv = self.value(*b).clone();
                add_to(grads, *a, g.zip(&bv, |x, y| x * y));
                add_to(grads, *b, g.zip(&av, |x, y| x * y));
            }
            Op::Affine(a, alpha, _beta) => {
                add_to(grads, *a, g.map(|x| alpha * x));
            }
            Op::MulConst(a, c) => {
                add_to(grads, *a, g.zip(c, |x, y| x * y));
            }
            Op::Sigmoid(a) => {
                let y = &node.value;
                add_to(grads, *a, g.zip(y, |gx, yx| gx * yx * (1.0 - yx)));
            }
            Op::Tanh(a) => {
                let y = &node.value;
                add_to(grads, *a, g.zip(y, |gx, yx| gx * (1.0 - yx * yx)));
            }
            Op::Relu(a) => {
                let x = self.value(*a).clone();
                add_to(
                    grads,
                    *a,
                    g.zip(&x, |gx, xv| if xv > 0.0 { gx } else { 0.0 }),
                );
            }
            Op::ConcatCols(a, b) => {
                let ac = self.value(*a).cols();
                let bc = self.value(*b).cols();
                let ga = Tensor::from_fn(g.rows(), ac, |r, c| g.get(r, c));
                let gb = Tensor::from_fn(g.rows(), bc, |r, c| g.get(r, ac + c));
                add_to(grads, *a, ga);
                add_to(grads, *b, gb);
            }
            Op::GatherRows(a, idx) => {
                let rows = self.value(*a).rows();
                let mut ga = Tensor::zeros(rows, g.cols());
                for (r, &i) in idx.iter().enumerate() {
                    for c in 0..g.cols() {
                        ga.set(i, c, ga.get(i, c) + g.get(r, c));
                    }
                }
                add_to(grads, *a, ga);
            }
            Op::ScatterAddRows(a, idx) => {
                let mut ga = Tensor::zeros(idx.len(), g.cols());
                for (r, &i) in idx.iter().enumerate() {
                    ga.copy_row_from(r, g, i);
                }
                add_to(grads, *a, ga);
            }
            Op::GatherRowsP(a, plan) => {
                let rows = self.value(*a).rows();
                let mut ga = Tensor::zeros(rows, g.cols());
                for (r, &i) in plan.indices().iter().enumerate() {
                    for c in 0..g.cols() {
                        ga.set(i, c, ga.get(i, c) + g.get(r, c));
                    }
                }
                add_to(grads, *a, ga);
            }
            Op::ScatterAddRowsP(a, plan) => {
                let mut ga = Tensor::zeros(plan.len(), g.cols());
                for (r, &i) in plan.indices().iter().enumerate() {
                    ga.copy_row_from(r, g, i);
                }
                add_to(grads, *a, ga);
            }
            Op::MulConstShared(a, c) => {
                add_to(grads, *a, g.zip(c, |x, y| x * y));
            }
            Op::SegMatMul(a, b, plan) => {
                let av = self.value(*a);
                let bv = self.value(*b);
                add_to(grads, *a, g.matmul(&bv.transpose()));
                // Weight gradient per segment: the slice product
                // a[lo..hi]^T * g[lo..hi] is exactly the per-sample
                // `av.transpose().matmul(g)` for that sample's rows. Empty
                // segments contribute nothing — matching a per-sample tape
                // where the op simply would not exist.
                let n_seg = plan.n_segments();
                for s in 0..n_seg {
                    let (lo, hi) = plan.range(s);
                    if lo == hi {
                        continue;
                    }
                    let gb = av.matmul_t_rows(g, lo, hi);
                    add_seg(seg, *b, s, n_seg, gb);
                }
            }
            Op::SegAddRow(a, b, plan) => {
                add_to(grads, *a, g.clone());
                // Bias gradient per segment: ascending-row column sums over
                // that segment's rows — the per-sample AddRow fold.
                let n_seg = plan.n_segments();
                for s in 0..n_seg {
                    let (lo, hi) = plan.range(s);
                    if lo == hi {
                        continue;
                    }
                    let mut gb = Tensor::zeros(1, g.cols());
                    for r in lo..hi {
                        for c in 0..g.cols() {
                            gb.set(0, c, gb.get(0, c) + g.get(r, c));
                        }
                    }
                    add_seg(seg, *b, s, n_seg, gb);
                }
            }
            Op::SegmentSum(a, plan) => {
                let (rows, cols) = self.value(*a).shape();
                let mut ga = Tensor::zeros(rows, cols);
                for s in 0..plan.n_segments() {
                    let (lo, hi) = plan.range(s);
                    for r in lo..hi {
                        ga.copy_row_from(r, g, s);
                    }
                }
                add_to(grads, *a, ga);
            }
            Op::SegmentMean(a, plan) => {
                let (rows, cols) = self.value(*a).shape();
                let mut ga = Tensor::zeros(rows, cols);
                for s in 0..plan.n_segments() {
                    let (lo, hi) = plan.range(s);
                    let n = (hi - lo) as f64;
                    debug_assert!(n > 0.0, "segments are non-empty");
                    for r in lo..hi {
                        for c in 0..cols {
                            ga.set(r, c, g.get(s, c) / n);
                        }
                    }
                }
                add_to(grads, *a, ga);
            }
            Op::SegMse(p, target, plan) => {
                let pv = self.value(*p);
                let cols = pv.cols();
                let mut gp = Tensor::zeros(pv.rows(), cols);
                for s in 0..plan.n_segments() {
                    let (lo, hi) = plan.range(s);
                    let n = ((hi - lo) * cols) as f64;
                    let gs = g.get(s, 0);
                    for r in lo..hi {
                        for c in 0..cols {
                            // Same expression as the Mse arm below, with the
                            // per-segment upstream scalar and element count.
                            gp.set(r, c, 2.0 * (pv.get(r, c) - target.get(r, c)) * gs / n);
                        }
                    }
                }
                add_to(grads, *p, gp);
            }
            Op::SumAll(a) => {
                let s = g.get(0, 0);
                let (r, c) = self.value(*a).shape();
                add_to(grads, *a, Tensor::full(r, c, s));
            }
            Op::MeanAll(a) => {
                let av = self.value(*a);
                let n = av.len() as f64;
                debug_assert!(n > 0.0, "forward pass rejected the empty tensor");
                let s = g.get(0, 0) / n;
                let (r, c) = av.shape();
                add_to(grads, *a, Tensor::full(r, c, s));
            }
            Op::Mse(p, target) => {
                let pv = self.value(*p);
                let n = pv.len() as f64;
                debug_assert!(n > 0.0);
                let s = g.get(0, 0);
                let gp = pv.zip(target, |a, b| 2.0 * (a - b) * s / n);
                add_to(grads, *p, gp);
            }
            Op::Mae(p, target) => {
                let pv = self.value(*p);
                let n = pv.len() as f64;
                debug_assert!(n > 0.0);
                let s = g.get(0, 0);
                let gp = pv.zip(target, |a, b| (a - b).signum() * s / n);
                add_to(grads, *p, gp);
            }
        }
    }
}

/// Result of a backward pass.
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
    /// Per-(node, segment) partials from segment-aware ops. Kept separate
    /// from `grads` so each segment's accumulation order is exactly the
    /// per-sample order — merging them into one slot would change the
    /// floating-point fold.
    seg: Vec<Option<Vec<Option<Tensor>>>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. node `v`, if it received any.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Per-segment gradient of the loss w.r.t. node `v` restricted to
    /// segment `s` (from `seg_matmul` / `seg_add_row`), if any.
    pub fn seg_get(&self, v: Var, s: usize) -> Option<&Tensor> {
        self.seg
            .get(v.0)
            .and_then(|o| o.as_ref())
            .and_then(|slots| slots.get(s))
            .and_then(|g| g.as_ref())
    }

    /// True if node `v` received any per-segment partials.
    pub fn has_seg(&self, v: Var) -> bool {
        self.seg.get(v.0).is_some_and(|o| o.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central finite-difference check of `d loss / d leaf` for every element
    /// of every listed leaf.
    fn grad_check(build: impl Fn(&mut Tape, &[Tensor]) -> Var, leaves: &[Tensor], tol: f64) {
        // Analytic gradients.
        let mut tape = Tape::new();
        let vars: Vec<Var> = leaves.iter().map(|t| tape.leaf(t.clone())).collect();
        let loss = build(&mut tape, leaves);
        let grads = tape.backward(loss);
        let eps = 1e-6;
        for (li, leaf) in leaves.iter().enumerate() {
            let analytic = grads
                .get(vars[li])
                .unwrap_or_else(|| panic!("leaf {li} got no gradient"))
                .clone();
            for e in 0..leaf.len() {
                let mut plus = leaves.to_vec();
                plus[li].data_mut()[e] += eps;
                let mut t1 = Tape::new();
                for t in &plus {
                    t1.leaf(t.clone());
                }
                let l1 = build(&mut t1, &plus);
                let mut minus = leaves.to_vec();
                minus[li].data_mut()[e] -= eps;
                let mut t2 = Tape::new();
                for t in &minus {
                    t2.leaf(t.clone());
                }
                let l2 = build(&mut t2, &minus);
                let numeric = (t1.value(l1).get(0, 0) - t2.value(l2).get(0, 0)) / (2.0 * eps);
                let a = analytic.data()[e];
                assert!(
                    (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                    "leaf {li} elem {e}: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    fn rand_t(r: usize, c: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::xavier(r, c, &mut rng)
    }

    #[test]
    fn value_scalars_counts_all_node_values() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::zeros(2, 3)); // 6 scalars
        let b = tape.leaf(Tensor::zeros(2, 3)); // 6 scalars
        let s = tape.add(a, b); // 6 scalars
        let _total = tape.sum_all(s); // 1 scalar
        assert_eq!(tape.len(), 4);
        assert_eq!(tape.value_scalars(), 19);
    }

    #[test]
    fn grad_matmul_chain() {
        let a = rand_t(3, 4, 1);
        let b = rand_t(4, 2, 2);
        grad_check(
            |tape, _| {
                let (va, vb) = (Var(0), Var(1));
                let c = tape.matmul(va, vb);
                tape.sum_all(c)
            },
            &[a, b],
            1e-6,
        );
    }

    #[test]
    fn grad_elementwise_ops() {
        let a = rand_t(2, 3, 3);
        let b = rand_t(2, 3, 4);
        grad_check(
            |tape, _| {
                let (va, vb) = (Var(0), Var(1));
                let s = tape.add(va, vb);
                let d = tape.sub(s, vb);
                let m = tape.mul(d, va);
                let f = tape.affine(m, 0.5, -0.1);
                tape.mean_all(f)
            },
            &[a, b],
            1e-6,
        );
    }

    #[test]
    fn grad_activations() {
        let a = rand_t(2, 4, 5);
        for act in 0..3 {
            grad_check(
                |tape, _| {
                    let va = Var(0);
                    let y = match act {
                        0 => tape.sigmoid(va),
                        1 => tape.tanh(va),
                        _ => tape.relu(va),
                    };
                    tape.sum_all(y)
                },
                std::slice::from_ref(&a),
                1e-5,
            );
        }
    }

    #[test]
    fn grad_add_row_broadcast() {
        let a = rand_t(3, 4, 6);
        let b = rand_t(1, 4, 7);
        grad_check(
            |tape, _| {
                let (va, vb) = (Var(0), Var(1));
                let y = tape.add_row(va, vb);
                let z = tape.tanh(y);
                tape.mean_all(z)
            },
            &[a, b],
            1e-6,
        );
    }

    #[test]
    fn grad_concat() {
        let a = rand_t(2, 3, 8);
        let b = rand_t(2, 2, 9);
        grad_check(
            |tape, _| {
                let (va, vb) = (Var(0), Var(1));
                let y = tape.concat_cols(va, vb);
                let z = tape.sigmoid(y);
                tape.sum_all(z)
            },
            &[a, b],
            1e-6,
        );
    }

    #[test]
    fn grad_gather_scatter() {
        let a = rand_t(4, 3, 10);
        grad_check(
            |tape, _| {
                let va = Var(0);
                let gathered = tape.gather_rows(va, vec![0, 2, 2, 3, 1]);
                let act = tape.tanh(gathered);
                let scattered = tape.scatter_add_rows(act, vec![1, 0, 1, 2, 2], 3);
                tape.sum_all(scattered)
            },
            &[a],
            1e-6,
        );
    }

    #[test]
    fn grad_losses() {
        let p = rand_t(3, 2, 11);
        let target = rand_t(3, 2, 12);
        let t2 = target.clone();
        grad_check(
            move |tape, _| {
                let vp = Var(0);
                tape.mse(vp, &t2)
            },
            std::slice::from_ref(&p),
            1e-6,
        );
        let t3 = target.clone();
        grad_check(
            move |tape, _| {
                let vp = Var(0);
                tape.mae(vp, &t3)
            },
            &[p],
            1e-5,
        );
    }

    #[test]
    fn grad_mul_const_and_one_minus() {
        let a = rand_t(2, 3, 13);
        let mask = Tensor::from_fn(2, 3, |r, c| if (r + c) % 2 == 0 { 1.0 } else { 0.3 });
        grad_check(
            move |tape, _| {
                let va = Var(0);
                let m = tape.mul_const(va, &mask);
                let o = tape.one_minus(m);
                tape.mean_all(o)
            },
            &[a],
            1e-6,
        );
    }

    #[test]
    fn grad_gru_like_composite() {
        // A full GRU-style cell wired by hand: the most representative
        // composite for RouteNet.
        let x = rand_t(5, 3, 20);
        let h = rand_t(5, 4, 21);
        let wz = rand_t(3, 4, 22);
        let uz = rand_t(4, 4, 23);
        let bz = rand_t(1, 4, 24);
        let wh = rand_t(3, 4, 25);
        let uh = rand_t(4, 4, 26);
        grad_check(
            |tape, _| {
                let (x, h, wz, uz, bz, wh, uh) =
                    (Var(0), Var(1), Var(2), Var(3), Var(4), Var(5), Var(6));
                let xw = tape.matmul(x, wz);
                let hu = tape.matmul(h, uz);
                let s = tape.add(xw, hu);
                let s = tape.add_row(s, bz);
                let z = tape.sigmoid(s);
                let xwh = tape.matmul(x, wh);
                let rh = tape.mul(z, h); // stand-in for reset gate
                let rhu = tape.matmul(rh, uh);
                let cand_in = tape.add(xwh, rhu);
                let cand = tape.tanh(cand_in);
                let zi = tape.one_minus(z);
                let keep = tape.mul(zi, h);
                let take = tape.mul(z, cand);
                let hnew = tape.add(keep, take);
                tape.mean_all(hnew)
            },
            &[x, h, wz, uz, bz, wh, uh],
            1e-5,
        );
    }

    #[test]
    fn values_are_correct_for_simple_graph() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = tape.leaf(Tensor::from_vec(1, 2, vec![3.0, 4.0]));
        let s = tape.add(a, b);
        assert_eq!(tape.value(s).data(), &[4.0, 6.0]);
        let m = tape.mul(s, s);
        assert_eq!(tape.value(m).data(), &[16.0, 36.0]);
        let l = tape.sum_all(m);
        assert_eq!(tape.value(l).get(0, 0), 52.0);
        let grads = tape.backward(l);
        // dL/da = 2*s = [8, 12]
        assert_eq!(grads.get(a).unwrap().data(), &[8.0, 12.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[8.0, 12.0]);
    }

    #[test]
    fn diamond_graph_accumulates_gradients() {
        // loss = sum(a*a + a): grad = 2a + 1
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]));
        let sq = tape.mul(a, a);
        let s = tape.add(sq, a);
        let l = tape.sum_all(s);
        let grads = tape.backward(l);
        assert_eq!(grads.get(a).unwrap().data(), &[3.0, -3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::zeros(2, 2));
        tape.backward(a);
    }

    #[test]
    fn unused_nodes_get_no_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(1, 1, vec![2.0]));
        let unused = tape.leaf(Tensor::from_vec(1, 1, vec![5.0]));
        let l = tape.sum_all(a);
        let grads = tape.backward(l);
        assert!(grads.get(unused).is_none());
        assert!(grads.get(a).is_some());
    }

    #[test]
    fn grad_segment_sum_and_mean() {
        let a = rand_t(5, 3, 30);
        let seg = SegmentPlan::from_lens(&[2, 3]);
        let s2 = seg.clone();
        grad_check(
            move |tape, _| {
                let va = Var(0);
                let y = tape.segment_sum(va, &s2);
                let z = tape.tanh(y);
                tape.sum_all(z)
            },
            std::slice::from_ref(&a),
            1e-6,
        );
        let s3 = seg.clone();
        grad_check(
            move |tape, _| {
                let va = Var(0);
                let y = tape.segment_mean(va, &s3);
                tape.mean_all(y)
            },
            &[a],
            1e-6,
        );
    }

    #[test]
    fn plan_ops_match_vec_ops_bitwise() {
        let a = rand_t(4, 3, 31);
        let idx = vec![0, 2, 2, 3, 1];
        let scat = vec![1, 0, 1, 2, 2];

        let mut t1 = Tape::new();
        let va1 = t1.leaf(a.clone());
        let g1 = t1.gather_rows(va1, idx.clone());
        let s1 = t1.scatter_add_rows(g1, scat.clone(), 3);
        let l1 = t1.sum_all(s1);
        let gr1 = t1.backward(l1);

        let mut t2 = Tape::new();
        let va2 = t2.leaf(a.clone());
        let g2 = t2.gather_rows_plan(va2, &IndexPlan::new(idx));
        let s2 = t2.scatter_add_rows_plan(g2, &IndexPlan::new(scat), 3);
        let l2 = t2.sum_all(s2);
        let gr2 = t2.backward(l2);

        assert_eq!(t1.value(s1), t2.value(s2));
        assert_eq!(gr1.get(va1), gr2.get(va2));
    }

    #[test]
    fn mul_const_shared_matches_mul_const() {
        let a = rand_t(3, 2, 32);
        let mask = Tensor::from_fn(3, 2, |r, c| if (r + c) % 2 == 0 { 1.0 } else { 0.25 });
        let mut t1 = Tape::new();
        let va1 = t1.leaf(a.clone());
        let m1 = t1.mul_const(va1, &mask);
        let l1 = t1.sum_all(m1);
        let gr1 = t1.backward(l1);

        let shared = Arc::new(mask);
        let mut t2 = Tape::new();
        let va2 = t2.leaf(a);
        let m2 = t2.mul_const_shared(va2, &shared);
        let l2 = t2.sum_all(m2);
        let gr2 = t2.backward(l2);

        assert_eq!(t1.value(m1), t2.value(m2));
        assert_eq!(gr1.get(va1), gr2.get(va2));
    }

    /// The load-bearing batched-kernel guarantee at the op level: a
    /// seg_matmul/seg_add_row/seg_mse pipeline over concatenated samples
    /// produces, per segment, bitwise the values and gradients of running
    /// each sample through matmul/add_row/mse on its own tape.
    #[test]
    fn seg_ops_match_per_sample_ops_bitwise() {
        let lens = [3usize, 0, 2, 4];
        let total: usize = lens.iter().sum();
        let x = rand_t(total, 3, 40);
        let w = rand_t(3, 2, 41);
        let b = rand_t(1, 2, 42);
        let target = rand_t(total, 2, 43);
        let seg = SegmentPlan::from_lens(&lens);

        // Batched: one tape over all rows.
        let mut bt = Tape::new();
        let vx = bt.leaf(x.clone());
        let vw = bt.leaf(w.clone());
        let vb = bt.leaf(b.clone());
        let mm = bt.seg_matmul(vx, vw, &seg);
        let biased = bt.seg_add_row(mm, vb, &seg);
        // seg_mse requires non-empty segments: fold only the active ones.
        let active: Vec<usize> = lens.iter().copied().filter(|&l| l > 0).collect();
        let aseg = SegmentPlan::from_lens(&active);
        let losses = bt.seg_mse(biased, &target, &aseg);
        let l = bt.sum_all(losses);
        let bgrads = bt.backward(l);

        // Per-sample: one tape per non-empty segment.
        let mut ai = 0usize;
        for s in 0..seg.n_segments() {
            let (lo, hi) = seg.range(s);
            if lo == hi {
                assert!(bgrads.seg_get(vw, s).is_none());
                assert!(bgrads.seg_get(vb, s).is_none());
                continue;
            }
            let mut pt = Tape::new();
            let px = pt.leaf(x.rows_copy(lo, hi));
            let pw = pt.leaf(w.clone());
            let pb = pt.leaf(b.clone());
            let pmm = pt.matmul(px, pw);
            let pbiased = pt.add_row(pmm, pb);
            let ploss = pt.mse(pbiased, &target.rows_copy(lo, hi));
            let pgrads = pt.backward(ploss);

            // Forward values bit-identical.
            assert_eq!(
                &bt.value(biased).rows_copy(lo, hi),
                pt.value(pbiased),
                "segment {s} forward mismatch"
            );
            assert_eq!(
                bt.value(losses).get(ai, 0),
                pt.value(ploss).get(0, 0),
                "segment {s} loss mismatch"
            );
            // Per-segment weight/bias gradients bit-identical.
            assert_eq!(
                bgrads.seg_get(vw, s).unwrap(),
                pgrads.get(pw).unwrap(),
                "segment {s} weight grad mismatch"
            );
            assert_eq!(
                bgrads.seg_get(vb, s).unwrap(),
                pgrads.get(pb).unwrap(),
                "segment {s} bias grad mismatch"
            );
            // Data gradient rows bit-identical.
            assert_eq!(
                &bgrads.get(vx).unwrap().rows_copy(lo, hi),
                pgrads.get(px).unwrap(),
                "segment {s} input grad mismatch"
            );
            ai += 1;
        }
        assert!(bgrads.has_seg(vw) && bgrads.has_seg(vb));
        assert!(!bgrads.has_seg(vx));
    }

    /// Arena contract: after the first pass, replaying the same op sequence
    /// through `reset` allocates every value buffer from the pool.
    #[test]
    fn reset_recycles_all_value_buffers() {
        let x = rand_t(6, 4, 50);
        let w = rand_t(4, 3, 51);
        let run = |tape: &mut Tape| {
            let vx = tape.leaf_copied(&x);
            let vw = tape.leaf_copied(&w);
            let mm = tape.matmul(vx, vw);
            let act = tape.tanh(mm);
            let l = tape.mean_all(act);
            tape.value(l).get(0, 0)
        };
        let mut tape = Tape::new();
        let first = run(&mut tape);
        let nodes = tape.len();
        let misses_after_first = tape.reuse_misses();
        for _ in 0..5 {
            tape.reset();
            let again = run(&mut tape);
            assert_eq!(first.to_bits(), again.to_bits());
        }
        // Every node value in every replay came from the pool.
        assert_eq!(tape.reuse_misses(), misses_after_first);
        assert_eq!(tape.reuse_hits(), 5 * nodes as u64);
        assert_eq!(tape.max_nodes(), nodes);
        assert!(tape.max_scalars() > 0);
        // Poison state clears on reset.
        let mut t = Tape::new();
        t.leaf(Tensor::from_vec(1, 1, vec![f64::NAN]));
        assert!(t.poisoned());
        t.reset();
        assert!(!t.poisoned());
    }

    /// Server contract: `trim_pool` bounds the arena after a large burst,
    /// dropping the largest buffers first, and stays usable afterwards.
    #[test]
    fn trim_pool_bounds_arena_and_drops_largest() {
        let mut tape = Tape::new();
        // One big buffer and several small ones.
        tape.leaf(Tensor::zeros(100, 100));
        for _ in 0..4 {
            tape.leaf(Tensor::zeros(2, 2));
        }
        tape.reset();
        assert_eq!(tape.pool_len(), 5);
        tape.trim_pool(3);
        assert_eq!(tape.pool_len(), 3);
        // The 10_000-scalar burst buffer is gone; survivors are small.
        assert!(tape.pool.iter().all(|b| b.capacity() < 10_000));
        let small = tape.alloc_tensor(2, 2);
        assert_eq!(small.data().len(), 4);
        // Trimming to a larger bound is a no-op.
        tape.trim_pool(100);
        assert_eq!(tape.pool_len(), 2);
    }
}
