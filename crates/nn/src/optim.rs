//! First-order optimizers and gradient utilities.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Scale gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut [(ParamId, Tensor)], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0);
    let sq: f64 = grads.iter().map(|(_, g)| g.norm().powi(2)).sum();
    debug_assert!(sq >= 0.0, "a sum of squared norms is nonnegative");
    let total = sq.sqrt();
    if total > max_norm {
        debug_assert!(
            total > 0.0,
            "total exceeds max_norm, which is asserted positive"
        );
        let s = max_norm / total;
        for (_, g) in grads.iter_mut() {
            *g = g.map(|x| x * s);
        }
    }
    total
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// New SGD optimizer for `store`.
    pub fn new(store: &ParamStore, lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0 && (0.0..1.0).contains(&momentum));
        Sgd {
            lr,
            momentum,
            velocity: vec![None; store.len()],
        }
    }

    /// Apply one update step.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]) {
        for (id, g) in grads {
            let update = if self.momentum > 0.0 {
                let v =
                    self.velocity[id.0].get_or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
                *v = v.map(|x| x * self.momentum);
                v.add_scaled(g, 1.0);
                v.clone()
            } else {
                g.clone()
            };
            store.get_mut(*id).add_scaled(&update, -self.lr);
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
///
/// The full optimizer state — step count and both moment vectors — is
/// serializable so a training checkpoint can resume bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Adam with standard hyperparameters (β1 = 0.9, β2 = 0.999).
    pub fn new(store: &ParamStore, lr: f64) -> Self {
        Self::with_betas(store, lr, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit moment decays.
    pub fn with_betas(store: &ParamStore, lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(lr > 0.0);
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        assert!(eps > 0.0);
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: vec![None; store.len()],
            v: vec![None; store.len()],
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// First-moment estimates, one slot per parameter (None = untouched).
    pub fn first_moments(&self) -> &[Option<Tensor>] {
        &self.m
    }

    /// Second-moment estimates, one slot per parameter (None = untouched).
    pub fn second_moments(&self) -> &[Option<Tensor>] {
        &self.v
    }

    /// Copy `src`'s full state (hyperparameters, step count, both moment
    /// vectors) into `self`, reusing existing moment buffers when shapes line
    /// up. Equivalent to `*self = src.clone()` without the steady-state
    /// allocations — the epoch-boundary snapshot path for resumable training.
    pub fn copy_state_from(&mut self, src: &Adam) {
        self.lr = src.lr;
        self.beta1 = src.beta1;
        self.beta2 = src.beta2;
        self.eps = src.eps;
        self.t = src.t;
        copy_moments(&mut self.m, &src.m);
        copy_moments(&mut self.v, &src.v);
    }

    /// Apply one update step.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]) {
        self.t += 1;
        // lint: allow(cast, reason = "Adam step counts stay many orders of magnitude below i32::MAX")
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        // lint: allow(cast, reason = "Adam step counts stay many orders of magnitude below i32::MAX")
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        debug_assert!(
            bc1 > 0.0 && bc2 > 0.0,
            "betas below 1 and t >= 1 keep the bias corrections positive"
        );
        for (id, g) in grads {
            let m = self.m[id.0].get_or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
            let v = self.v[id.0].get_or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
            *m = m.zip(g, |mi, gi| self.beta1 * mi + (1.0 - self.beta1) * gi);
            *v = v.zip(g, |vi, gi| self.beta2 * vi + (1.0 - self.beta2) * gi * gi);
            let p = store.get_mut(*id);
            for i in 0..p.len() {
                let mhat = m.data()[i] / bc1;
                let vhat = v.data()[i] / bc2;
                debug_assert!(vhat >= 0.0, "second moments average squared gradients");
                let denom = vhat.sqrt() + self.eps;
                debug_assert!(denom > 0.0, "the constructor asserts eps > 0");
                p.data_mut()[i] -= self.lr * mhat / denom;
            }
        }
    }
}

/// Copy optimizer moment slots, reusing buffers for matching shapes.
fn copy_moments(dst: &mut Vec<Option<Tensor>>, src: &[Option<Tensor>]) {
    dst.resize(src.len(), None);
    for (d, s) in dst.iter_mut().zip(src) {
        match (d.as_mut(), s) {
            (Some(dt), Some(st)) if (dt.rows(), dt.cols()) == (st.rows(), st.cols()) => {
                dt.copy_from(st);
            }
            _ => d.clone_from(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Session;

    /// Minimize f(w) = sum((w - c)^2) and require convergence to c.
    fn quadratic_loss_converges(mut stepper: impl FnMut(&mut ParamStore, &[(ParamId, Tensor)])) {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 3, vec![5.0, -4.0, 2.0]));
        let target = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        for _ in 0..500 {
            let mut sess = Session::new(&store);
            let vw = sess.param(w);
            let loss = sess.tape.mse(vw, &target);
            let grads = sess.tape.backward(loss);
            let pg = sess.param_grads(&grads);
            stepper(&mut store, &pg);
        }
        for (a, b) in store.get(w).data().iter().zip(target.data()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let store = ParamStore::new();
        let mut opt = Sgd::new(&store, 0.5, 0.0);
        opt.velocity = vec![None; 8];
        quadratic_loss_converges(move |s, g| opt.step(s, g));
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let store = ParamStore::new();
        let mut opt = Sgd::new(&store, 0.2, 0.9);
        opt.velocity = vec![None; 8];
        quadratic_loss_converges(move |s, g| opt.step(s, g));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let store = ParamStore::new();
        let mut opt = Adam::new(&store, 0.1);
        opt.m = vec![None; 8];
        opt.v = vec![None; 8];
        quadratic_loss_converges(move |s, g| opt.step(s, g));
    }

    #[test]
    fn adam_counts_steps() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(1, 1));
        let mut opt = Adam::new(&store, 0.01);
        assert_eq!(opt.steps(), 0);
        opt.step(&mut store, &[(w, Tensor::full(1, 1, 1.0))]);
        opt.step(&mut store, &[(w, Tensor::full(1, 1, 1.0))]);
        assert_eq!(opt.steps(), 2);
        // Parameter moved in the negative gradient direction.
        assert!(store.get(w).get(0, 0) < 0.0);
    }

    #[test]
    fn copy_state_from_equals_clone() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 2, vec![1.0, -2.0]));
        let mut src = Adam::new(&store, 0.05);
        src.step(&mut store, &[(w, Tensor::full(1, 2, 0.5))]);
        src.step(&mut store, &[(w, Tensor::full(1, 2, -0.25))]);

        // Fresh destination (empty moment slots): full copy.
        let mut dst = Adam::new(&store, 0.9);
        dst.copy_state_from(&src);
        assert_eq!(dst, src);

        // Steady state (shapes already match): buffers reused, still equal.
        src.step(&mut store, &[(w, Tensor::full(1, 2, 1.5))]);
        dst.copy_state_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut g = vec![(ParamId(0), Tensor::from_vec(1, 2, vec![0.3, 0.4]))];
        let pre = clip_global_norm(&mut g, 10.0);
        assert!((pre - 0.5).abs() < 1e-12);
        assert_eq!(g[0].1.data(), &[0.3, 0.4]);
    }

    #[test]
    fn clip_rescales_large_gradients() {
        let mut g = vec![
            (ParamId(0), Tensor::from_vec(1, 2, vec![30.0, 40.0])),
            (ParamId(1), Tensor::from_vec(1, 1, vec![0.0])),
        ];
        let pre = clip_global_norm(&mut g, 5.0);
        assert!((pre - 50.0).abs() < 1e-12);
        let post: f64 = g.iter().map(|(_, t)| t.norm().powi(2)).sum::<f64>().sqrt();
        assert!((post - 5.0).abs() < 1e-9);
        // Direction preserved.
        assert!((g[0].1.data()[0] / g[0].1.data()[1] - 0.75).abs() < 1e-12);
    }
}
