//! Neural-network layers: dense, MLP, and the GRU cell at RouteNet's core.

use crate::params::{ParamId, ParamStore, Session};
use crate::plan::SegmentPlan;
use crate::tape::Var;
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

fn apply(sess: &mut Session, act: Activation, x: Var) -> Var {
    match act {
        Activation::Linear => x,
        Activation::Relu => sess.tape.relu(x),
        Activation::Tanh => sess.tape.tanh(x),
        Activation::Sigmoid => sess.tape.sigmoid(x),
    }
}

/// Fully-connected layer `act(x W + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: ParamId,
    b: ParamId,
    act: Activation,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Create with Xavier-initialized weights registered in `store`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut R,
    ) -> Self {
        let w = store.add(format!("{name}.w"), Tensor::xavier(in_dim, out_dim, rng));
        let b = store.add(format!("{name}.b"), Tensor::zeros(1, out_dim));
        Dense {
            w,
            b,
            act,
            in_dim,
            out_dim,
        }
    }

    /// Forward pass for a `batch x in_dim` input.
    pub fn forward(&self, sess: &mut Session, x: Var) -> Var {
        debug_assert_eq!(sess.tape.value(x).cols(), self.in_dim, "Dense input width");
        let w = sess.param(self.w);
        let b = sess.param(self.b);
        let xw = sess.tape.matmul(x, w);
        let z = sess.tape.add_row(xw, b);
        apply(sess, self.act, z)
    }

    /// Segment-aware forward: same op sequence (and bitwise the same values)
    /// as [`Dense::forward`], but weight/bias gradients accumulate into
    /// per-segment slots so each sample in a concatenated batch gets exactly
    /// the gradient a per-sample tape would produce.
    pub fn forward_seg(&self, sess: &mut Session, x: Var, seg: &SegmentPlan) -> Var {
        debug_assert_eq!(sess.tape.value(x).cols(), self.in_dim, "Dense input width");
        let w = sess.param(self.w);
        let b = sess.param(self.b);
        let xw = sess.tape.seg_matmul(x, w, seg);
        let z = sess.tape.seg_add_row(xw, b, seg);
        apply(sess, self.act, z)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// Multi-layer perceptron: hidden layers with one activation, configurable
/// output activation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Build from layer widths `dims = [in, h1, ..., out]`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let mut layers = Vec::new();
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                out_act
            } else {
                hidden_act
            };
            layers.push(Dense::new(
                store,
                &format!("{name}.{i}"),
                dims[i],
                dims[i + 1],
                act,
                rng,
            ));
        }
        Mlp { layers }
    }

    /// Forward pass.
    pub fn forward(&self, sess: &mut Session, mut x: Var) -> Var {
        for l in &self.layers {
            x = l.forward(sess, x);
        }
        x
    }

    /// Segment-aware forward (see [`Dense::forward_seg`]).
    pub fn forward_seg(&self, sess: &mut Session, mut x: Var, seg: &SegmentPlan) -> Var {
        for l in &self.layers {
            x = l.forward_seg(sess, x, seg);
        }
        x
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        // lint: allow(panic, reason = "constructor asserts dims.len() >= 2, so layers is non-empty")
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        // lint: allow(panic, reason = "constructor asserts dims.len() >= 2, so layers is non-empty")
        self.layers.last().expect("non-empty").out_dim()
    }
}

/// Gated recurrent unit cell (Cho et al. 2014), the update function used for
/// both path and link states in RouteNet.
///
/// ```text
/// z = sigmoid(x Wz + h Uz + bz)        update gate
/// r = sigmoid(x Wr + h Ur + br)        reset gate
/// c = tanh(x Wh + (r ⊙ h) Uh + bh)     candidate
/// h' = (1 - z) ⊙ h + z ⊙ c
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    in_dim: usize,
    hid_dim: usize,
}

impl GruCell {
    /// Create with Xavier-initialized weights registered in `store`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hid_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = |store: &mut ParamStore, suffix: &str, r: usize, c: usize, rng: &mut R| {
            store.add(format!("{name}.{suffix}"), Tensor::xavier(r, c, rng))
        };
        let wz = w(store, "wz", in_dim, hid_dim, rng);
        let uz = w(store, "uz", hid_dim, hid_dim, rng);
        let bz = store.add(format!("{name}.bz"), Tensor::zeros(1, hid_dim));
        let wr = w(store, "wr", in_dim, hid_dim, rng);
        let ur = w(store, "ur", hid_dim, hid_dim, rng);
        let br = store.add(format!("{name}.br"), Tensor::zeros(1, hid_dim));
        let wh = w(store, "wh", in_dim, hid_dim, rng);
        let uh = w(store, "uh", hid_dim, hid_dim, rng);
        let bh = store.add(format!("{name}.bh"), Tensor::zeros(1, hid_dim));
        GruCell {
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
            in_dim,
            hid_dim,
        }
    }

    /// One step for a batch: `x` is `B x in_dim`, `h` is `B x hid_dim`;
    /// returns the new `B x hid_dim` hidden state.
    pub fn step(&self, sess: &mut Session, x: Var, h: Var) -> Var {
        debug_assert_eq!(sess.tape.value(x).cols(), self.in_dim, "GRU input width");
        debug_assert_eq!(sess.tape.value(h).cols(), self.hid_dim, "GRU hidden width");
        let (wz, uz, bz) = (
            sess.param(self.wz),
            sess.param(self.uz),
            sess.param(self.bz),
        );
        let (wr, ur, br) = (
            sess.param(self.wr),
            sess.param(self.ur),
            sess.param(self.br),
        );
        let (wh, uh, bh) = (
            sess.param(self.wh),
            sess.param(self.uh),
            sess.param(self.bh),
        );

        let t = &mut sess.tape;
        let xwz = t.matmul(x, wz);
        let huz = t.matmul(h, uz);
        let zs = t.add(xwz, huz);
        let zs = t.add_row(zs, bz);
        let z = t.sigmoid(zs);

        let xwr = t.matmul(x, wr);
        let hur = t.matmul(h, ur);
        let rs = t.add(xwr, hur);
        let rs = t.add_row(rs, br);
        let r = t.sigmoid(rs);

        let rh = t.mul(r, h);
        let xwh = t.matmul(x, wh);
        let rhuh = t.matmul(rh, uh);
        let cs = t.add(xwh, rhuh);
        let cs = t.add_row(cs, bh);
        let c = t.tanh(cs);

        let zi = t.one_minus(z);
        let keep = t.mul(zi, h);
        let take = t.mul(z, c);
        t.add(keep, take)
    }

    /// Segment-aware step: same op sequence (and bitwise the same values)
    /// as [`GruCell::step`], with all six weight matmuls and three bias adds
    /// recorded as segment ops so per-sample gradients stay separable in a
    /// concatenated batch.
    pub fn step_seg(&self, sess: &mut Session, x: Var, h: Var, seg: &SegmentPlan) -> Var {
        debug_assert_eq!(sess.tape.value(x).cols(), self.in_dim, "GRU input width");
        debug_assert_eq!(sess.tape.value(h).cols(), self.hid_dim, "GRU hidden width");
        let (wz, uz, bz) = (
            sess.param(self.wz),
            sess.param(self.uz),
            sess.param(self.bz),
        );
        let (wr, ur, br) = (
            sess.param(self.wr),
            sess.param(self.ur),
            sess.param(self.br),
        );
        let (wh, uh, bh) = (
            sess.param(self.wh),
            sess.param(self.uh),
            sess.param(self.bh),
        );

        let t = &mut sess.tape;
        let xwz = t.seg_matmul(x, wz, seg);
        let huz = t.seg_matmul(h, uz, seg);
        let zs = t.add(xwz, huz);
        let zs = t.seg_add_row(zs, bz, seg);
        let z = t.sigmoid(zs);

        let xwr = t.seg_matmul(x, wr, seg);
        let hur = t.seg_matmul(h, ur, seg);
        let rs = t.add(xwr, hur);
        let rs = t.seg_add_row(rs, br, seg);
        let r = t.sigmoid(rs);

        let rh = t.mul(r, h);
        let xwh = t.seg_matmul(x, wh, seg);
        let rhuh = t.seg_matmul(rh, uh, seg);
        let cs = t.add(xwh, rhuh);
        let cs = t.seg_add_row(cs, bh, seg);
        let c = t.tanh(cs);

        let zi = t.one_minus(z);
        let keep = t.mul(zi, h);
        let take = t.mul(z, c);
        t.add(keep, take)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden width.
    pub fn hid_dim(&self) -> usize {
        self.hid_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_shapes_and_linearity() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dense::new(&mut store, "d", 3, 2, Activation::Linear, &mut rng);
        assert_eq!((d.in_dim(), d.out_dim()), (3, 2));
        let mut sess = Session::new(&store);
        let x = sess.input(Tensor::zeros(4, 3));
        let y = d.forward(&mut sess, x);
        // Zero input + zero bias => zero output for linear layer.
        assert_eq!(sess.tape.value(y).shape(), (4, 2));
        assert!(sess.tape.value(y).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dense_relu_clamps() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let d = Dense::new(&mut store, "d", 2, 2, Activation::Relu, &mut rng);
        let mut sess = Session::new(&store);
        let x = sess.input(Tensor::from_vec(1, 2, vec![5.0, -5.0]));
        let y = d.forward(&mut sess, x);
        assert!(sess.tape.value(y).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn mlp_stacks_layers() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(
            &mut store,
            "m",
            &[4, 8, 8, 2],
            Activation::Relu,
            Activation::Linear,
            &mut rng,
        );
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 2);
        // 3 dense layers x (w + b)
        assert_eq!(store.len(), 6);
        let mut sess = Session::new(&store);
        let x = sess.input(Tensor::full(5, 4, 0.1));
        let y = mlp.forward(&mut sess, x);
        assert_eq!(sess.tape.value(y).shape(), (5, 2));
        assert!(sess.tape.value(y).all_finite());
    }

    #[test]
    fn gru_hidden_stays_bounded() {
        // tanh candidate + convex gate combination keeps |h| <= 1 given
        // |h0| <= 1.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let gru = GruCell::new(&mut store, "g", 3, 5, &mut rng);
        assert_eq!((gru.in_dim(), gru.hid_dim()), (3, 5));
        let mut sess = Session::new(&store);
        let x = sess.input(Tensor::full(2, 3, 10.0)); // large inputs
        let mut h = sess.input(Tensor::zeros(2, 5));
        for _ in 0..10 {
            h = gru.step(&mut sess, x, h);
        }
        assert!(sess.tape.value(h).max_abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn gru_zero_update_gate_preserves_state() {
        // With update-gate weights forced to large negative bias, z ~ 0 and
        // h' ~ h.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let gru = GruCell::new(&mut store, "g", 2, 3, &mut rng);
        let bz = store.by_name("g.bz").unwrap();
        *store.get_mut(bz) = Tensor::full(1, 3, -50.0);
        let mut sess = Session::new(&store);
        let x = sess.input(Tensor::full(1, 2, 0.3));
        let h0t = Tensor::from_vec(1, 3, vec![0.5, -0.2, 0.9]);
        let h0 = sess.input(h0t.clone());
        let h1 = gru.step(&mut sess, x, h0);
        for (a, b) in sess.tape.value(h1).data().iter().zip(h0t.data()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn seg_variants_match_per_sample_forward_and_grads() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let gru = GruCell::new(&mut store, "g", 3, 4, &mut rng);
        let readout = Dense::new(&mut store, "r", 4, 2, Activation::Tanh, &mut rng);
        let lens = [2usize, 3];
        let seg = SegmentPlan::from_lens(&lens);
        let x = Tensor::from_fn(5, 3, |r, c| (r as f64 * 0.3 - c as f64 * 0.7).sin());
        let h = Tensor::from_fn(5, 4, |r, c| (r as f64 * 0.11 + c as f64 * 0.05).cos());

        // Batched tape over both samples.
        let mut bs = Session::new(&store);
        let bx = bs.input(x.clone());
        let bh = bs.input(h.clone());
        let bh1 = gru.step_seg(&mut bs, bx, bh, &seg);
        let by = readout.forward_seg(&mut bs, bh1, &seg);
        let bl = bs.tape.sum_all(by);
        let bg = bs.tape.backward(bl);
        let per_sample = bs.param_grads_seg(&bg, 2);

        // One tape per sample.
        let mut lo = 0usize;
        for (s, &n) in lens.iter().enumerate() {
            let mut ps = Session::new(&store);
            let px = ps.input(x.rows_copy(lo, lo + n));
            let ph = ps.input(h.rows_copy(lo, lo + n));
            let ph1 = gru.step(&mut ps, px, ph);
            let py = readout.forward(&mut ps, ph1);
            let pl = ps.tape.sum_all(py);
            let pg = ps.tape.backward(pl);
            assert_eq!(
                &bs.tape.value(by).rows_copy(lo, lo + n),
                ps.tape.value(py),
                "sample {s} forward mismatch"
            );
            // The per-sample tape uses plain ops throughout — its
            // param_grads are the reference the batched per-segment slots
            // must reproduce bitwise.
            let expect = ps.param_grads(&pg);
            assert_eq!(per_sample[s].len(), expect.len(), "sample {s} param count");
            for ((ia, ga), (ib, gb)) in per_sample[s].iter().zip(&expect) {
                assert_eq!(ia, ib);
                assert_eq!(ga, gb, "sample {s} grad mismatch for {}", store.name(*ia));
            }
            lo += n;
        }
    }

    #[test]
    fn gru_gradients_flow_to_all_parameters() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let gru = GruCell::new(&mut store, "g", 2, 3, &mut rng);
        let mut sess = Session::new(&store);
        let x = sess.input(Tensor::full(4, 2, 0.5));
        let h0 = sess.input(Tensor::full(4, 3, 0.1));
        let h1 = gru.step(&mut sess, x, h0);
        let h2 = gru.step(&mut sess, x, h1); // reuse cell: grads must merge
        let loss = sess.tape.mean_all(h2);
        let grads = sess.tape.backward(loss);
        let pg = sess.param_grads(&grads);
        assert_eq!(pg.len(), 9, "all 9 GRU params should receive gradients");
        for (id, g) in &pg {
            assert!(g.norm() > 0.0, "param {} has zero grad", store.name(*id));
            assert!(g.all_finite());
        }
    }
}
