//! Property test of the batched CSR kernel's core contract: packing any
//! mix of scenarios into one [`BatchedScenario`] and running a single
//! forward/backward is **bitwise identical** to running each sample on its
//! own tape — output rows, per-sample losses, and per-sample parameter
//! gradients. This is what lets the trainer switch execution strategies
//! (sequential, batched, any thread count) without perturbing a single bit
//! of the training curve.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use routenet_core::prelude::*;
use routenet_netgraph::routing::shortest_path_routing;
use routenet_netgraph::TrafficMatrix;
use routenet_netgraph::{generate, Graph};
use routenet_nn::{ParamId, Session, Tensor};

fn model(seed: u64) -> RouteNet {
    let mut m = RouteNet::new(RouteNetConfig {
        link_state_dim: 6,
        path_state_dim: 6,
        readout_hidden: 8,
        t_iterations: 3,
        predict_jitter: true,
        predict_drops: false,
        seed,
    });
    m.set_normalizer(Normalizer {
        capacity_scale: 10_000.0,
        traffic_scale: 500.0,
        ..Normalizer::default()
    });
    m
}

fn random_scenario(n: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph: Graph = generate::synthetic(n, &mut rng);
    let routing = shortest_path_routing(&graph).unwrap();
    let mut traffic = TrafficMatrix::zeros(n);
    for (s, d) in graph.node_pairs() {
        traffic.set_demand(s, d, 100.0 + 900.0 * rng.gen::<f64>());
    }
    Scenario {
        graph,
        routing,
        traffic,
    }
}

/// Positive pseudo-observed targets (the trainer only ever regresses onto
/// simulator KPIs, which are strictly positive).
fn targets(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| 0.01 + rng.gen::<f64>()).collect();
    Tensor::from_vec(rows, cols, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn batched_pass_is_bitwise_identical_to_per_sample(
        seed in 0u64..500,
        n_scenarios in 2usize..5,
    ) {
        let m = model(7);
        let mut size_rng = StdRng::seed_from_u64(seed ^ 0xB47C);
        let scenarios: Vec<Scenario> = (0..n_scenarios)
            .map(|i| {
                let n = size_rng.gen_range(4usize..8);
                random_scenario(n, seed.wrapping_mul(31).wrapping_add(i as u64))
            })
            .collect();
        let compiled: Vec<_> = scenarios.iter().map(|sc| m.compile(sc)).collect();
        let tgts: Vec<Tensor> = scenarios
            .iter()
            .enumerate()
            .map(|(i, sc)| targets(sc.n_pairs(), m.out_dim(), seed.wrapping_add(1000 + i as u64)))
            .collect();

        // Per-sample reference: each scenario on its own fresh tape,
        // exactly what the sequential trainer path computes.
        let mut ref_rows: Vec<Tensor> = Vec::new();
        let mut ref_losses: Vec<f64> = Vec::new();
        let mut ref_grads: Vec<Vec<(ParamId, Tensor)>> = Vec::new();
        for (c, t) in compiled.iter().zip(&tgts) {
            let mut sess = Session::new(m.store());
            let out = m.forward(&mut sess, c);
            let loss = sess.tape.mse(out, t);
            ref_rows.push(sess.tape.value(out).clone());
            ref_losses.push(sess.tape.value(loss).get(0, 0));
            let grads = sess.tape.backward(loss);
            ref_grads.push(sess.param_grads(&grads));
        }

        // Batched: one packed CSR pass over all scenarios at once.
        let refs: Vec<&_> = compiled.iter().collect();
        let batch = BatchedScenario::pack(&refs);
        let mut tdata = Vec::new();
        for t in &tgts {
            tdata.extend_from_slice(t.data());
        }
        let target = Tensor::from_vec(batch.path_seg().total(), m.out_dim(), tdata);
        let mut sess = Session::new(m.store());
        let out = m.forward_batch(&mut sess, &batch);
        let seg_loss = sess.tape.seg_mse(out, &target, batch.path_seg());
        let total = sess.tape.sum_all(seg_loss);
        let out_rows = sess.tape.value(out).clone();
        let seg_loss_vals = sess.tape.value(seg_loss).clone();
        let grads = sess.tape.backward(total);
        let per_sample = sess.param_grads_seg(&grads, compiled.len());

        // Forward rows: each sample's block equals its solo forward, bitwise.
        for (s, r) in ref_rows.iter().enumerate() {
            let (lo, hi) = batch.sample_path_range(s);
            prop_assert_eq!(hi - lo, r.rows());
            for (row_b, row_r) in (lo..hi).zip(0..r.rows()) {
                for col in 0..r.cols() {
                    prop_assert!(
                        out_rows.get(row_b, col).to_bits() == r.get(row_r, col).to_bits(),
                        "forward row {row_r} col {col} of sample {s} diverged"
                    );
                }
            }
        }
        // Per-sample losses from the segmented MSE, bitwise.
        for (s, &l) in ref_losses.iter().enumerate() {
            prop_assert_eq!(seg_loss_vals.get(s, 0).to_bits(), l.to_bits());
        }
        // Per-sample parameter gradients, bitwise.
        for (s, rg) in ref_grads.iter().enumerate() {
            let bg = &per_sample[s];
            prop_assert_eq!(bg.len(), rg.len());
            for ((pid_b, tb), (pid_r, tr)) in bg.iter().zip(rg) {
                prop_assert_eq!(pid_b, pid_r);
                let bitwise = tb
                    .data()
                    .iter()
                    .zip(tr.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                prop_assert!(bitwise, "gradient for sample {s} param {pid_b:?} diverged");
            }
        }
    }
}
