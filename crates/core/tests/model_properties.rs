//! Property-based tests of RouteNet's structural invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routenet_core::prelude::*;
use routenet_netgraph::routing::{shortest_path_routing, RoutingScheme};
use routenet_netgraph::{generate, Graph, NodeId, TrafficMatrix};

fn model(seed: u64) -> RouteNet {
    let mut m = RouteNet::new(RouteNetConfig {
        link_state_dim: 6,
        path_state_dim: 6,
        readout_hidden: 8,
        t_iterations: 3,
        predict_jitter: true,
        predict_drops: false,
        seed,
    });
    m.set_normalizer(Normalizer {
        capacity_scale: 10_000.0,
        traffic_scale: 500.0,
        ..Normalizer::default()
    });
    m
}

fn random_scenario(n: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generate::synthetic(n, &mut rng);
    let routing = shortest_path_routing(&graph).unwrap();
    let mut traffic = TrafficMatrix::zeros(n);
    for (s, d) in graph.node_pairs() {
        traffic.set_demand(s, d, 100.0 + 900.0 * rand::Rng::gen::<f64>(&mut rng));
    }
    Scenario {
        graph,
        routing,
        traffic,
    }
}

/// Apply a node permutation to a scenario: relabel nodes, re-add links in
/// permuted order, remap routing paths and demands.
fn permute_scenario(sc: &Scenario, perm: &[usize]) -> Scenario {
    let n = sc.graph.n_nodes();
    let mut graph = Graph::new(sc.graph.name.clone(), n);
    // Recreate links in the order induced by sorting permuted endpoints so
    // link ids differ from the original — a stronger test.
    let mut edges: Vec<(usize, usize, f64, f64)> = sc
        .graph
        .links()
        .map(|(_, l)| (perm[l.src.0], perm[l.dst.0], l.capacity_bps, l.prop_delay_s))
        .collect();
    edges.sort_by_key(|e| (e.0, e.1));
    for (s, d, cap, pd) in edges {
        graph.add_link(NodeId(s), NodeId(d), cap, pd).unwrap();
    }
    let routing = RoutingScheme::from_node_paths(&graph, |s, d| {
        // Map back to original node ids, look up the original path, map it
        // forward through the permutation.
        let inv: Vec<usize> = {
            let mut inv = vec![0; n];
            for (i, &p) in perm.iter().enumerate() {
                inv[p] = i;
            }
            inv
        };
        let os = NodeId(inv[s.0]);
        let od = NodeId(inv[d.0]);
        let onodes = sc.routing.node_path(&sc.graph, os, od).ok()?;
        Some(onodes.into_iter().map(|x| NodeId(perm[x.0])).collect())
    })
    .unwrap();
    let mut traffic = TrafficMatrix::zeros(n);
    for (s, d, v) in sc.traffic.entries() {
        if v > 0.0 {
            traffic.set_demand(NodeId(perm[s.0]), NodeId(perm[d.0]), v);
        }
    }
    Scenario {
        graph,
        routing,
        traffic,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// RouteNet is equivariant under node relabeling: permuting node ids
    /// (and hence link ids and pair order) permutes the predictions and
    /// changes no value. The GNN sees only structure, never labels.
    #[test]
    fn node_relabeling_equivariance(seed in 0u64..200, perm_seed in 0u64..200) {
        let n = 7usize;
        let sc = random_scenario(n, seed);
        let mut perm: Vec<usize> = (0..n).collect();
        use rand::seq::SliceRandom;
        perm.shuffle(&mut StdRng::seed_from_u64(perm_seed));
        let permuted = permute_scenario(&sc, &perm);
        permuted.validate().unwrap();

        let m = model(1);
        let p_orig = m.predict(&sc);
        let p_perm = m.predict(&permuted);

        // pair (s, d) in the original corresponds to (perm[s], perm[d]).
        let orig_pairs = sc.pairs();
        let perm_pairs = permuted.pairs();
        for (i, (s, d)) in orig_pairs.iter().enumerate() {
            let target = (NodeId(perm[s.0]), NodeId(perm[d.0]));
            let j = perm_pairs.iter().position(|p| *p == target).unwrap();
            let a = p_orig[i].delay_s;
            let b = p_perm[j].delay_s;
            prop_assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "pair {s}->{d}: {a} vs {b} after relabeling"
            );
        }
    }

    /// Doubling every capacity and every demand leaves all path/link
    /// *features* unchanged only if the normalizer scales with them — with a
    /// fixed normalizer the predictions must change. Guards against the
    /// model silently ignoring its inputs.
    #[test]
    fn sensitivity_to_capacity(seed in 0u64..200) {
        let sc = random_scenario(6, seed);
        let mut scaled = sc.clone();
        let ids: Vec<_> = scaled.graph.links().map(|(id, _)| id).collect();
        for id in ids {
            scaled.graph.link_mut(id).unwrap().capacity_bps *= 3.0;
        }
        let m = model(2);
        let a = m.predict(&sc);
        let b = m.predict(&scaled);
        prop_assert!(a.iter().zip(&b).any(|(x, y)| x.delay_s != y.delay_s));
    }

    /// Predictions are finite and deterministic for arbitrary scenarios.
    #[test]
    fn predictions_always_finite_and_deterministic(seed in 0u64..500, n in 4usize..12) {
        let sc = random_scenario(n, seed);
        let m = model(3);
        let a = m.predict(&sc);
        let b = m.predict(&sc);
        prop_assert_eq!(a.len(), n * (n - 1));
        for (x, y) in a.iter().zip(&b) {
            prop_assert!(x.delay_s.is_finite() && x.jitter_s2.is_finite());
            prop_assert_eq!(x.delay_s, y.delay_s);
        }
    }

    /// The compiled index is consistent: messages per iteration equal the
    /// total hop count, regardless of topology.
    #[test]
    fn compiled_index_consistency(seed in 0u64..500, n in 4usize..14) {
        let sc = random_scenario(n, seed);
        let idx = routenet_core::indexing::PathTensors::build(&sc);
        let total: usize = idx.positions.iter().map(|p| p.path_idx.len()).sum();
        prop_assert_eq!(total, idx.total_hops());
        let hops: usize = sc.graph.node_pairs()
            .map(|(s, d)| sc.routing.hops(s, d))
            .sum();
        prop_assert_eq!(total, hops);
        // Fan-in sums to the same total.
        prop_assert_eq!(idx.link_fanin().iter().sum::<usize>(), total);
    }
}

/// Relative-error metrics agree with a hand computation end to end through
/// the evaluation harness.
#[test]
fn eval_harness_metrics_agree_with_manual() {
    let sc = random_scenario(5, 99);
    let n = sc.n_pairs();
    let sample = Sample {
        scenario: sc,
        targets: (0..n)
            .map(|i| TargetKpi {
                delay_s: 0.1 + i as f64 * 0.01,
                jitter_s2: 0.01,
                drop_prob: 0.0,
            })
            .collect(),
        topology: "T".into(),
        intensity: 0.5,
        seed: 0,
    };
    let m = model(4);
    let ev = collect_predictions(&m, std::slice::from_ref(&sample));
    let s = ev.delay_summary().expect("non-empty eval");
    let manual_mae = ev
        .delay_pred
        .iter()
        .zip(&ev.delay_true)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / n as f64;
    assert!((s.mae - manual_mae).abs() < 1e-12);
}
