//! Property tests for checkpoint persistence: `save → load` must reproduce
//! the parameter store, the full Adam state (step count + both moment
//! vectors), and the normalizer bit-for-bit, and the checksum must reject
//! any corrupted byte with a clear error.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routenet_core::checkpoint::CheckpointError;
use routenet_core::prelude::*;
use routenet_core::sample::TargetKpi;
use routenet_netgraph::routing::shortest_path_routing;
use routenet_netgraph::{generate, TrafficModel};
use routenet_simnet::queueing::Mm1Network;

/// Tiny M/M/1-labeled dataset (same recipe as the trainer's unit tests).
fn dataset(n_samples: usize, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generate::ring(5);
    let routing = shortest_path_routing(&g).unwrap();
    (0..n_samples)
        .map(|i| {
            let tm = routenet_netgraph::traffic::sample_traffic_matrix(
                &g,
                &routing,
                &TrafficModel::Uniform { min_frac: 0.2 },
                0.4,
                &mut rng,
            );
            let net = Mm1Network::build(&g, &routing, &tm, 1_000.0);
            let targets: Vec<TargetKpi> = net
                .predict_all(&routing)
                .into_iter()
                .map(|p| TargetKpi {
                    delay_s: p.mean_delay_s,
                    jitter_s2: p.jitter_s2,
                    drop_prob: 0.0,
                })
                .collect();
            Sample {
                scenario: Scenario {
                    graph: g.clone(),
                    routing: routing.clone(),
                    traffic: tm,
                },
                targets,
                topology: "Ring-5".into(),
                intensity: 0.4,
                seed: i as u64,
            }
        })
        .collect()
}

/// Train briefly with checkpointing enabled and return the on-disk state —
/// a realistic `TrainState` with non-trivial Adam moments and RNG state.
fn trained_state(model_seed: u64, lr: f64, tag: &str) -> TrainState {
    let data = dataset(4, model_seed ^ 0x5EED);
    let mut model = RouteNet::new(RouteNetConfig {
        link_state_dim: 6,
        path_state_dim: 6,
        readout_hidden: 12,
        t_iterations: 2,
        predict_jitter: true,
        predict_drops: false,
        seed: model_seed,
    });
    let path = std::env::temp_dir().join(format!(
        "rn-ckpt-prop-{tag}-{model_seed}-{}.ckpt",
        std::process::id()
    ));
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 2,
        lr,
        shuffle_seed: model_seed,
        checkpoint_path: Some(path.to_string_lossy().into_owned()),
        ..TrainConfig::default()
    };
    train(&mut model, &data[..3], &data[3..], &cfg).expect("training failed");
    let state = TrainState::load(&path).expect("checkpoint loads");
    std::fs::remove_file(&path).ok();
    state
}

/// A checkpoint cut off at *any* byte offset — the on-disk shape a crash
/// mid-write would leave without the atomic-write protocol — must map to a
/// typed [`CheckpointError`], never a panic and never a silently-loaded
/// partial state. Exhaustive over every prefix length, which is why it uses
/// a deliberately small trained state.
#[test]
fn truncation_at_every_byte_offset_is_a_typed_error_never_a_panic() {
    let data = dataset(2, 0xA11CE);
    let mut model = RouteNet::new(RouteNetConfig {
        link_state_dim: 3,
        path_state_dim: 3,
        readout_hidden: 4,
        t_iterations: 1,
        predict_jitter: false,
        predict_drops: false,
        seed: 5,
    });
    let path = std::env::temp_dir().join(format!("rn-ckpt-trunc-{}.ckpt", std::process::id()));
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 1,
        lr: 1e-3,
        checkpoint_path: Some(path.to_string_lossy().into_owned()),
        ..TrainConfig::default()
    };
    train(&mut model, &data[..1], &data[1..], &cfg).expect("training failed");
    let bytes = std::fs::read(&path).expect("read checkpoint");
    assert!(bytes.len() > 64, "checkpoint suspiciously small");

    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).expect("write truncated prefix");
        match TrainState::load(&path) {
            Ok(_) => panic!(
                "prefix of {cut}/{} bytes loaded as a valid state",
                bytes.len()
            ),
            Err(
                CheckpointError::Io(_)
                | CheckpointError::Format(_)
                | CheckpointError::Truncated { .. }
                | CheckpointError::ChecksumMismatch { .. }
                | CheckpointError::Parse(_),
            ) => {}
            Err(other) => panic!("prefix of {cut} bytes: unexpected error class: {other}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn save_load_reproduces_state_bit_for_bit(
        model_seed in 1u64..10_000,
        lr in 1e-4f64..5e-3,
    ) {
        let state = trained_state(model_seed, lr, "rt");
        let path = std::env::temp_dir().join(format!(
            "rn-ckpt-prop-copy-{model_seed}-{}.ckpt",
            std::process::id()
        ));
        state.save(&path).expect("save");
        let back = TrainState::load(&path).expect("load");
        std::fs::remove_file(&path).ok();

        // Parameter store: names and every weight, exactly.
        prop_assert_eq!(&back.params, &state.params);
        prop_assert_eq!(&back.best_params, &state.best_params);
        // Full Adam state: hyperparameters, step count, both moment vectors.
        prop_assert_eq!(&back.opt, &state.opt);
        prop_assert!(back.opt.steps() > 0, "optimizer never stepped");
        // Normalizer and shuffle RNG state.
        prop_assert_eq!(&back.norm, &state.norm);
        prop_assert_eq!(back.rng, state.rng);
        // Bookkeeping: loss curve, best epoch, trackers.
        prop_assert_eq!(&back.epochs, &state.epochs);
        prop_assert_eq!(back.epoch_next, state.epoch_next);
        prop_assert_eq!(back.best_epoch, state.best_epoch);
        prop_assert_eq!(back.best_loss().to_bits(), state.best_loss().to_bits());
    }

    #[test]
    fn flipped_payload_byte_is_rejected_by_checksum(
        model_seed in 1u64..10_000,
        flip_frac in 0.0f64..1.0,
    ) {
        let state = trained_state(model_seed, 1e-3, "flip");
        let path = std::env::temp_dir().join(format!(
            "rn-ckpt-prop-flip-{model_seed}-{}.ckpt",
            std::process::id()
        ));
        state.save(&path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip one bit somewhere in the payload (past the header line).
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let span = bytes.len() - header_end;
        let idx = header_end + ((span as f64 * flip_frac) as usize).min(span - 1);
        bytes[idx] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write corrupted");
        let err = TrainState::load(&path).expect_err("corruption must be detected");
        std::fs::remove_file(&path).ok();
        prop_assert!(
            matches!(err, CheckpointError::ChecksumMismatch { .. }),
            "expected checksum mismatch, got: {err}"
        );
        prop_assert!(err.to_string().contains("crc32 mismatch"), "unclear error: {err}");
    }
}
