//! Batched scenario packing: many [`CompiledScenario`]s, one tape.
//!
//! [`BatchedScenario::pack`] concatenates the per-sample path and link
//! tensors row-block-wise and rebases every position's gather/scatter
//! indices into the concatenated row space — a CSR layout where
//! [`SegmentPlan`]s are the row pointers. [`crate::model::RouteNet::forward_batch`]
//! then replays the *same* op sequence as the per-sample forward over the
//! concatenated rows, using segment-aware ops for every cross-row reduction
//! that touches a parameter, so per-sample losses and gradients recovered
//! from a batched tape are bitwise identical to running each sample on its
//! own tape (see DESIGN.md "Batched execution & memory arenas").

use crate::model::CompiledScenario;
use routenet_nn::{IndexPlan, SegmentPlan, Tensor};
use std::sync::Arc;

/// Rebased gather/scatter index for one hop position of a batch.
#[derive(Debug, Clone)]
pub struct BatchPosition {
    /// Concatenated active-path rows (indices into the batch path rows),
    /// sample blocks in pack order.
    pub path_idx: IndexPlan,
    /// For each active path, the batch link row it traverses here.
    pub link_idx: IndexPlan,
    /// Sample segmentation of the gathered rows (empty segments mark
    /// samples already past their longest path).
    pub seg: SegmentPlan,
}

/// A minibatch of compiled scenarios packed into one concatenated row space.
#[derive(Debug, Clone)]
pub struct BatchedScenario {
    n_samples: usize,
    /// Total path rows across the batch.
    pub n_paths: usize,
    /// Total link rows across the batch.
    pub n_links: usize,
    /// Longest path length across the batch.
    pub max_len: usize,
    link_x: Tensor,
    path_x: Tensor,
    path_seg: SegmentPlan,
    link_seg: SegmentPlan,
    positions: Vec<BatchPosition>,
    /// `keep_masks[k]`: 0 where a path is active at position `k` (its row is
    /// replaced by the GRU output), 1 elsewhere — including every row of a
    /// sample whose longest path ends before `k`.
    keep_masks: Vec<Arc<Tensor>>,
}

impl BatchedScenario {
    /// Pack compiled scenarios into one batch. Order is significant: segment
    /// order is the reduction order, so callers that need determinism must
    /// pack in a deterministic sample order. Panics on an empty slice or a
    /// scenario with no paths (a segment in the loss must be non-empty).
    pub fn pack(scenarios: &[&CompiledScenario]) -> Self {
        assert!(!scenarios.is_empty(), "cannot pack an empty batch");
        let n_samples = scenarios.len();
        let path_dim = scenarios[0].path_x.cols();
        let link_dim = scenarios[0].link_x.cols();

        let mut path_lens = Vec::with_capacity(n_samples);
        let mut link_lens = Vec::with_capacity(n_samples);
        let mut max_len = 0usize;
        for sc in scenarios {
            assert!(sc.tensors.n_paths > 0, "scenario with zero paths");
            assert_eq!(sc.path_x.cols(), path_dim, "mixed path state widths");
            assert_eq!(sc.link_x.cols(), link_dim, "mixed link state widths");
            path_lens.push(sc.tensors.n_paths);
            link_lens.push(sc.tensors.n_links);
            max_len = max_len.max(sc.tensors.max_len);
        }
        let path_seg = SegmentPlan::from_lens(&path_lens);
        let link_seg = SegmentPlan::from_lens(&link_lens);
        let n_paths = path_seg.total();
        let n_links = link_seg.total();

        let mut path_data = Vec::with_capacity(n_paths * path_dim);
        let mut link_data = Vec::with_capacity(n_links * link_dim);
        for sc in scenarios {
            path_data.extend_from_slice(sc.path_x.data());
            link_data.extend_from_slice(sc.link_x.data());
        }
        let path_x = Tensor::from_vec(n_paths, path_dim, path_data);
        let link_x = Tensor::from_vec(n_links, link_dim, link_data);

        let mut positions = Vec::with_capacity(max_len);
        let mut keep_masks = Vec::with_capacity(max_len);
        let mut seg_lens = Vec::with_capacity(n_samples);
        for k in 0..max_len {
            // Not per-iteration scratch: both index vecs are moved into the
            // IndexPlan retained by the returned BatchedScenario.
            let mut path_idx = Vec::new(); // lint: allow(hot-loop-alloc, reason = "moved into the retained IndexPlan")
            let mut link_idx = Vec::new(); // lint: allow(hot-loop-alloc, reason = "moved into the retained IndexPlan")
            seg_lens.clear();
            let mut mask = Tensor::full(n_paths, path_dim, 1.0);
            for (s, sc) in scenarios.iter().enumerate() {
                let (path_off, _) = path_seg.range(s);
                let (link_off, _) = link_seg.range(s);
                if k >= sc.tensors.max_len {
                    seg_lens.push(0);
                    continue;
                }
                let pos = &sc.tensors.positions[k];
                seg_lens.push(pos.path_idx.len());
                for (&p, &l) in pos.path_idx.iter().zip(&pos.link_idx) {
                    path_idx.push(path_off + p);
                    link_idx.push(link_off + l);
                }
                // Splice the sample's own 0/1 keep mask over its row block;
                // rows of fully-inactive samples stay at the 1.0 fill, so
                // their states pass through the position update unchanged.
                let m = &sc.keep_masks[k];
                for r in 0..sc.tensors.n_paths {
                    for c in 0..path_dim {
                        mask.set(path_off + r, c, m.get(r, c));
                    }
                }
            }
            positions.push(BatchPosition {
                path_idx: IndexPlan::new(path_idx),
                link_idx: IndexPlan::new(link_idx),
                seg: SegmentPlan::from_lens(&seg_lens),
            });
            keep_masks.push(Arc::new(mask));
        }

        BatchedScenario {
            n_samples,
            n_paths,
            n_links,
            max_len,
            link_x,
            path_x,
            path_seg,
            link_seg,
            positions,
            keep_masks,
        }
    }

    /// Number of samples packed.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Sample segmentation of the batch path rows. This is the `n_seg`
    /// contract for [`routenet_nn::Session::param_grads_seg`] and the
    /// segment plan for a per-sample loss over the batched readout.
    pub fn path_seg(&self) -> &SegmentPlan {
        &self.path_seg
    }

    /// Sample segmentation of the batch link rows.
    pub fn link_seg(&self) -> &SegmentPlan {
        &self.link_seg
    }

    /// Row range `[lo, hi)` of sample `s` in the batch path rows.
    pub fn sample_path_range(&self, s: usize) -> (usize, usize) {
        self.path_seg.range(s)
    }

    pub(crate) fn position(&self, k: usize) -> &BatchPosition {
        &self.positions[k]
    }

    pub(crate) fn keep_mask(&self, k: usize) -> &Arc<Tensor> {
        &self.keep_masks[k]
    }

    pub(crate) fn link_x(&self) -> &Tensor {
        &self.link_x
    }

    pub(crate) fn path_x(&self) -> &Tensor {
        &self.path_x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RouteNet, RouteNetConfig};
    use crate::sample::Scenario;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_netgraph::{generate, TrafficMatrix};

    fn model() -> RouteNet {
        let mut m = RouteNet::new(RouteNetConfig {
            link_state_dim: 4,
            path_state_dim: 4,
            readout_hidden: 8,
            t_iterations: 2,
            predict_jitter: true,
            predict_drops: false,
            seed: 5,
        });
        m.set_normalizer(crate::features::Normalizer {
            capacity_scale: 10_000.0,
            traffic_scale: 230.0,
            ..crate::features::Normalizer::default()
        });
        m
    }

    fn scenario(n: usize, seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::synthetic(n, &mut rng);
        let routing = shortest_path_routing(&g).unwrap();
        let mut traffic = TrafficMatrix::zeros(n);
        for (s, d) in g.node_pairs() {
            traffic.set_demand(s, d, 100.0 + 7.0 * (s.0 * n + d.0) as f64);
        }
        Scenario {
            graph: g,
            routing,
            traffic,
        }
    }

    #[test]
    fn pack_concatenates_row_blocks() {
        let m = model();
        let scs = [scenario(5, 1), scenario(8, 2)];
        let compiled: Vec<_> = scs.iter().map(|s| m.compile(s)).collect();
        let refs: Vec<&CompiledScenario> = compiled.iter().collect();
        let b = BatchedScenario::pack(&refs);
        assert_eq!(b.n_samples(), 2);
        assert_eq!(
            b.n_paths,
            compiled[0].tensors.n_paths + compiled[1].tensors.n_paths
        );
        assert_eq!(
            b.n_links,
            compiled[0].tensors.n_links + compiled[1].tensors.n_links
        );
        assert_eq!(
            b.max_len,
            compiled[0].tensors.max_len.max(compiled[1].tensors.max_len)
        );
        // Feature rows are verbatim copies of the per-sample tensors.
        let (lo, hi) = b.sample_path_range(1);
        assert_eq!(hi - lo, compiled[1].tensors.n_paths);
        for r in 0..(hi - lo) {
            for c in 0..compiled[1].path_x.cols() {
                assert_eq!(b.path_x().get(lo + r, c), compiled[1].path_x.get(r, c));
            }
        }
    }

    #[test]
    fn position_indices_stay_inside_sample_blocks() {
        let m = model();
        let scs = [scenario(6, 3), scenario(4, 4), scenario(7, 5)];
        let compiled: Vec<_> = scs.iter().map(|s| m.compile(s)).collect();
        let refs: Vec<&CompiledScenario> = compiled.iter().collect();
        let b = BatchedScenario::pack(&refs);
        for k in 0..b.max_len {
            let pos = b.position(k);
            assert_eq!(pos.seg.n_segments(), 3);
            assert_eq!(pos.seg.total(), pos.path_idx.len());
            for (s, sample) in compiled.iter().enumerate() {
                let (lo, hi) = pos.seg.range(s);
                let (plo, phi) = b.path_seg().range(s);
                let (llo, lhi) = b.link_seg().range(s);
                for i in lo..hi {
                    let p = pos.path_idx.indices()[i];
                    let l = pos.link_idx.indices()[i];
                    assert!(p >= plo && p < phi, "path row escaped its block");
                    assert!(l >= llo && l < lhi, "link row escaped its block");
                }
                // Past a sample's own max_len the segment must be empty and
                // its mask rows all 1.0 (state passes through unchanged).
                if k >= sample.tensors.max_len {
                    assert_eq!(hi, lo, "inactive sample has gathered rows");
                    let mask = b.keep_mask(k);
                    for r in plo..phi {
                        for c in 0..mask.cols() {
                            assert_eq!(mask.get(r, c), 1.0);
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn pack_rejects_empty() {
        BatchedScenario::pack(&[]);
    }

    /// Smallest scenario a serving query can carry: two nodes, two one-hop
    /// paths. `generate::synthetic` cannot build it (preferential attachment
    /// needs n > 2), so it comes from a full mesh.
    fn minimal_scenario(demand: f64) -> Scenario {
        let g = generate::full_mesh(2);
        let routing = shortest_path_routing(&g).unwrap();
        let mut traffic = TrafficMatrix::zeros(2);
        for (s, d) in g.node_pairs() {
            traffic.set_demand(s, d, demand);
        }
        Scenario {
            graph: g,
            routing,
            traffic,
        }
    }

    fn assert_bitwise(got: &[crate::sample::Prediction], want: &[crate::sample::Prediction]) {
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(want) {
            assert_eq!(a.delay_s.to_bits(), b.delay_s.to_bits());
            assert_eq!(a.jitter_s2.to_bits(), b.jitter_s2.to_bits());
            assert_eq!(a.drop_prob.to_bits(), b.drop_prob.to_bits());
        }
    }

    #[test]
    fn batch_of_one_minimal_scenario() {
        let m = model();
        let sc = minimal_scenario(120.0);
        let compiled = m.compile(&sc);
        let b = BatchedScenario::pack(&[&compiled]);
        assert_eq!(b.n_samples(), 1);
        assert_eq!(b.n_paths, 2);
        assert_eq!(b.max_len, 1);
        assert_eq!(b.sample_path_range(0), (0, 2));
        let batched = m.predict_batch_compiled(&[&compiled]);
        assert_eq!(batched.len(), 1);
        assert_bitwise(&batched[0], &m.predict_compiled(&compiled));
    }

    #[test]
    fn batch_mixing_empty_and_nonempty_segments() {
        // The minimal sample goes inactive after position 0; deeper samples
        // keep their segments populated, so later positions mix empty and
        // non-empty segments — the shape a mixed-topology micro-batch hits.
        let m = model();
        let scs = [minimal_scenario(90.0), scenario(8, 11), scenario(5, 12)];
        let compiled: Vec<_> = scs.iter().map(|s| m.compile(s)).collect();
        let refs: Vec<&CompiledScenario> = compiled.iter().collect();
        let b = BatchedScenario::pack(&refs);
        assert!(b.max_len > 1, "need depth to exercise inactive samples");
        let pos = b.position(b.max_len - 1);
        let (lo, hi) = pos.seg.range(0);
        assert_eq!(lo, hi, "minimal sample must be inactive at the last hop");
        assert!(
            (1..3).any(|s| {
                let (lo, hi) = pos.seg.range(s);
                hi > lo
            }),
            "a deep sample must stay active at the last hop"
        );
        let batched = m.predict_batch_compiled(&refs);
        for (preds, c) in batched.iter().zip(&compiled) {
            assert_bitwise(preds, &m.predict_compiled(c));
        }
    }

    #[test]
    fn repeated_topology_queries_share_one_cached_plan() {
        // The daemon's cache hands every same-topology query one PathTensors
        // plan; only the traffic differs. Per-query answers from the shared
        // plan must match compiling each scenario from scratch, bitwise.
        let m = model();
        let base = scenario(6, 21);
        let index = crate::indexing::PathTensors::build(&base);
        let mut queries = Vec::new();
        for i in 0..4 {
            let mut sc = base.clone();
            for (s, d) in sc.graph.node_pairs() {
                let demand = 80.0 + 13.0 * (i * 40 + s.0 * 6 + d.0) as f64;
                sc.traffic.set_demand(s, d, demand);
            }
            queries.push(sc);
        }
        let compiled: Vec<_> = queries
            .iter()
            .map(|sc| m.compile_with_index(sc, index.clone()))
            .collect();
        let refs: Vec<&CompiledScenario> = compiled.iter().collect();
        let batched = m.predict_batch_compiled(&refs);
        assert_eq!(batched.len(), 4);
        for (preds, sc) in batched.iter().zip(&queries) {
            let fresh = m.compile(sc);
            assert_bitwise(preds, &m.predict_compiled(&fresh));
        }
        // Different traffic must actually produce different answers — the
        // shared plan is an indexing cache, not a result cache.
        assert!(batched[0]
            .iter()
            .zip(&batched[1])
            .any(|(a, b)| a.delay_s != b.delay_s));
    }
}
