//! Crash-safe persistence: atomic writes, checksummed containers, and the
//! serializable [`TrainState`] behind checkpoint/resume.
//!
//! Durability model:
//!
//! * **Atomic**: every file is written to a temporary sibling, flushed to
//!   disk, and renamed into place ([`atomic_write`]). A crash mid-write can
//!   never leave a torn file under the final name — readers see either the
//!   old contents or the new contents, nothing in between.
//! * **Checksummed**: checkpoint files carry a header with a hand-rolled
//!   CRC32 over the payload ([`write_checksummed`] / [`read_checksummed`]),
//!   so silent corruption (bit rot, truncated copies) is detected at load
//!   time with a typed error instead of a garbage model.
//! * **Complete**: [`TrainState`] captures everything a training run needs
//!   to continue bit-identically — parameters, full Adam state (step count
//!   and both moment vectors), the fitted normalizer, the shuffle RNG
//!   state, the loss curve, the best-validation snapshot, and the
//!   patience/recovery trackers.
//!
//! The dataset writer (`routenet-dataset`) reuses [`atomic_write`] so *all*
//! persistence in the workspace goes through the same rename-based path.

use crate::features::Normalizer;
use crate::model::{RouteNet, RouteNetConfig};
use crate::trainer::{EpochStats, RecoveryEvent, TrainConfig};
use routenet_faults::{atomic_write_with, FaultFs, RealFs};
use routenet_nn::optim::Adam;
use routenet_nn::ParamStore;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Magic string opening every checkpoint header line.
pub const MAGIC: &str = "ROUTENET-CKPT";

/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from checkpoint persistence.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file is not a checkpoint container (bad magic/header/version).
    Format(String),
    /// The payload is shorter or longer than the header declares.
    Truncated {
        /// Payload length declared by the header.
        expected: usize,
        /// Payload length actually present.
        actual: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// CRC32 declared by the header.
        expected: u32,
        /// CRC32 of the bytes on disk.
        actual: u32,
    },
    /// The payload failed to deserialize.
    Parse(String),
    /// The checkpoint does not match the model/config it is restored into.
    Incompatible(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(msg) => write!(f, "not a checkpoint file: {msg}"),
            CheckpointError::Truncated { expected, actual } => write!(
                f,
                "checkpoint truncated: header declares {expected} payload bytes, found {actual}"
            ),
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint corrupt: crc32 mismatch (header {expected:08x}, payload {actual:08x})"
            ),
            CheckpointError::Parse(msg) => write!(f, "checkpoint payload invalid: {msg}"),
            CheckpointError::Incompatible(msg) => write!(f, "checkpoint incompatible: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected) — hand-rolled, no dependencies.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32; // lint: allow(cast, reason = "i < 256 fits u32 exactly")
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`. Matches zlib's `crc32` for cross-checking.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((c ^ u32::from(b)) & 0xFF) as usize;
        c = (c >> 8) ^ CRC_TABLE[idx];
    }
    !c
}

// ---------------------------------------------------------------------------
// Atomic file writes
// ---------------------------------------------------------------------------

/// Write `bytes` to `path` atomically: write a temporary sibling, fsync it,
/// then rename over the destination. Readers never observe a torn file.
///
/// Delegates to the canonical protocol in `routenet-faults`
/// ([`atomic_write_with`]), whose temp names carry the pid *and* a
/// per-process atomic counter so concurrent writers to the same path never
/// clobber each other's temp file. Use [`atomic_write_with`] directly to
/// route the write through an injected seam.
#[must_use = "an ignored write error means the checkpoint silently does not exist"]
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    atomic_write_with(&RealFs, path.as_ref(), bytes)
}

// ---------------------------------------------------------------------------
// Checksummed container
// ---------------------------------------------------------------------------

/// Atomically write `payload` wrapped in a checksummed container:
/// one ASCII header line (`ROUTENET-CKPT v1 crc32=<hex> len=<n>`)
/// followed by the raw payload bytes.
#[must_use = "an ignored write error means the checkpoint silently does not exist"]
pub fn write_checksummed(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), CheckpointError> {
    write_checksummed_with(&RealFs, path.as_ref(), payload)
}

/// [`write_checksummed`] routed through an explicit IO seam, for fault
/// injection and retry stacking.
#[must_use = "an ignored write error means the checkpoint silently does not exist"]
pub fn write_checksummed_with(
    fs: &dyn FaultFs,
    path: &Path,
    payload: &[u8],
) -> Result<(), CheckpointError> {
    let header = format!(
        "{MAGIC} v{FORMAT_VERSION} crc32={:08x} len={}\n",
        crc32(payload),
        payload.len()
    );
    let mut bytes = header.into_bytes();
    bytes.extend_from_slice(payload);
    atomic_write_with(fs, path, &bytes)?;
    Ok(())
}

/// Read a container written by [`write_checksummed`], verifying the length
/// and CRC32 before returning the payload.
#[must_use = "dropping the result loses both the payload and any corruption diagnosis"]
pub fn read_checksummed(path: impl AsRef<Path>) -> Result<Vec<u8>, CheckpointError> {
    read_checksummed_with(&RealFs, path.as_ref())
}

/// [`read_checksummed`] routed through an explicit IO seam, for fault
/// injection (short reads, EIO) and retry stacking.
#[must_use = "dropping the result loses both the payload and any corruption diagnosis"]
pub fn read_checksummed_with(fs: &dyn FaultFs, path: &Path) -> Result<Vec<u8>, CheckpointError> {
    let bytes = fs.read(path)?;
    let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
        return Err(CheckpointError::Format("missing header line".into()));
    };
    let header = std::str::from_utf8(&bytes[..nl])
        .map_err(|e| CheckpointError::Format(format!("header is not ASCII: {e}")))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    let [magic, version, crc_field, len_field] = fields[..] else {
        return Err(CheckpointError::Format(format!(
            "malformed header: {header:?}"
        )));
    };
    if magic != MAGIC {
        return Err(CheckpointError::Format(format!(
            "bad magic {magic:?} (expected {MAGIC:?})"
        )));
    }
    let version_n: u32 = version
        .strip_prefix('v')
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CheckpointError::Format(format!("bad version field {version:?}")))?;
    if version_n != FORMAT_VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported format version {version_n} (this build reads v{FORMAT_VERSION})"
        )));
    }
    let expected_crc = crc_field
        .strip_prefix("crc32=")
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or_else(|| CheckpointError::Format(format!("bad crc field {crc_field:?}")))?;
    let expected_len: usize = len_field
        .strip_prefix("len=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CheckpointError::Format(format!("bad len field {len_field:?}")))?;
    let payload = &bytes[nl + 1..];
    if payload.len() != expected_len {
        return Err(CheckpointError::Truncated {
            expected: expected_len,
            actual: payload.len(),
        });
    }
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(CheckpointError::ChecksumMismatch {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    Ok(payload.to_vec())
}

// ---------------------------------------------------------------------------
// TrainState
// ---------------------------------------------------------------------------

/// A complete snapshot of a training run at an epoch boundary.
///
/// Saving and reloading a `TrainState` and continuing the run produces
/// bit-identical parameters and loss curve to an uninterrupted run (proved
/// by `tests/resume_determinism.rs`). The same struct doubles as the
/// in-memory rollback target for divergence recovery.
///
/// Selection losses that may legitimately be `+inf` (before any epoch has
/// completed) are stored as raw `f64` bits, because JSON cannot represent
/// non-finite floats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainState {
    /// Container payload version (independent of the header version).
    pub version: u32,
    /// Architecture of the model the parameters belong to.
    pub model_config: RouteNetConfig,
    /// Trainer configuration of the original run (checked on resume).
    pub train_config: TrainConfig,
    /// Current weights.
    pub params: ParamStore,
    /// Normalizer fitted on the training set.
    pub norm: Normalizer,
    /// Full Adam state: current LR, betas, step count, both moment vectors.
    pub opt: Adam,
    /// Shuffle RNG state; restoring continues the stream bit-identically.
    pub rng: [u64; 4],
    /// Next epoch index to run (`epochs.len()` unless epochs were skipped).
    pub epoch_next: usize,
    /// Loss curve of the accepted (non-rolled-back) epochs so far.
    pub epochs: Vec<EpochStats>,
    /// Epoch index with the best selection loss so far.
    pub best_epoch: usize,
    /// Bits of the best selection loss (`f64::to_bits`; `+inf` initially).
    best_loss_bits: u64,
    /// Parameters of the best epoch (kept when `keep_best` is set).
    pub best_params: Option<ParamStore>,
    /// Divergence-recovery events so far.
    pub recoveries: Vec<RecoveryEvent>,
    /// Bits of the patience tracker's best significant loss.
    patience_best_bits: u64,
    /// Epoch of the last significant improvement (patience tracking).
    pub last_significant: usize,
    /// Rollbacks consumed from the divergence retry budget.
    pub rollbacks: usize,
}

impl TrainState {
    /// Fresh state at epoch 0 for a new training run.
    pub fn new(
        model_config: RouteNetConfig,
        train_config: TrainConfig,
        params: ParamStore,
        norm: Normalizer,
        opt: Adam,
        rng: [u64; 4],
    ) -> Self {
        TrainState {
            version: FORMAT_VERSION,
            model_config,
            train_config,
            params,
            norm,
            opt,
            rng,
            epoch_next: 0,
            epochs: Vec::new(),
            best_epoch: 0,
            best_loss_bits: f64::INFINITY.to_bits(),
            best_params: None,
            recoveries: Vec::new(),
            patience_best_bits: f64::INFINITY.to_bits(),
            last_significant: 0,
            rollbacks: 0,
        }
    }

    /// Best selection loss so far (`+inf` before any epoch completes).
    pub fn best_loss(&self) -> f64 {
        f64::from_bits(self.best_loss_bits)
    }

    /// Record a new best selection loss.
    pub fn set_best_loss(&mut self, loss: f64) {
        self.best_loss_bits = loss.to_bits();
    }

    /// Patience tracker's best significant loss (`+inf` initially).
    pub fn patience_best(&self) -> f64 {
        f64::from_bits(self.patience_best_bits)
    }

    /// Update the patience tracker's best significant loss.
    pub fn set_patience_best(&mut self, loss: f64) {
        self.patience_best_bits = loss.to_bits();
    }

    /// Atomically save to `path` inside a checksummed container.
    #[must_use = "an ignored save error means resume will restart from an older epoch"]
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        self.save_with(&RealFs, path.as_ref())
    }

    /// [`TrainState::save`] routed through an explicit IO seam.
    #[must_use = "an ignored save error means resume will restart from an older epoch"]
    pub fn save_with(&self, fs: &dyn FaultFs, path: &Path) -> Result<(), CheckpointError> {
        let json =
            serde_json::to_string(self).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        write_checksummed_with(fs, path, json.as_bytes())
    }

    /// Load a state saved by [`TrainState::save`], verifying the checksum.
    #[must_use = "dropping the result loses both the restored state and any corruption diagnosis"]
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        Self::load_with(&RealFs, path.as_ref())
    }

    /// [`TrainState::load`] routed through an explicit IO seam.
    #[must_use = "dropping the result loses both the restored state and any corruption diagnosis"]
    pub fn load_with(fs: &dyn FaultFs, path: &Path) -> Result<Self, CheckpointError> {
        let payload = read_checksummed_with(fs, path)?;
        let json = String::from_utf8(payload)
            .map_err(|e| CheckpointError::Parse(format!("payload is not UTF-8: {e}")))?;
        serde_json::from_str(&json).map_err(|e| CheckpointError::Parse(e.to_string()))
    }

    /// Rebuild a usable model from this snapshot (best parameters when
    /// available, else the current ones) — lets `predict`-style tools load
    /// a training checkpoint directly.
    #[must_use = "consumes the snapshot; dropping the result loses the rebuilt model"]
    pub fn into_model(self) -> Result<RouteNet, CheckpointError> {
        let params = self.best_params.unwrap_or(self.params);
        RouteNet::from_parts(self.model_config, params, self.norm)
            .map_err(CheckpointError::Incompatible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values (same as zlib).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = std::env::temp_dir().join(format!("rn-aw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.txt");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksummed_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("rn-ck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.ckpt");
        let payload = b"{\"hello\": [1, 2, 3]}";
        write_checksummed(&path, payload).unwrap();
        assert_eq!(read_checksummed(&path).unwrap(), payload);

        // Flip one payload byte: the checksum must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match read_checksummed(&path) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }

        // Truncate the payload: caught by the length field first.
        write_checksummed(&path, payload).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        match read_checksummed(&path) {
            Err(CheckpointError::Truncated { .. }) => {}
            other => panic!("expected truncation error, got {other:?}"),
        }

        // Not a checkpoint at all.
        std::fs::write(&path, b"just some text\nmore text\n").unwrap();
        match read_checksummed(&path) {
            Err(CheckpointError::Format(_)) => {}
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
