//! Minibatch training loop for RouteNet.
//!
//! Mirrors the original implementation's recipe: Adam on a (weighted) MSE
//! over z-scored delay/jitter targets, gradient clipping, multiplicative
//! learning-rate decay, and best-on-validation checkpointing.

use crate::features::Normalizer;
use crate::model::{CompiledScenario, RouteNet};
use crate::sample::Sample;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use routenet_nn::optim::{clip_global_norm, Adam};
use routenet_nn::{GradAccumulator, ParamStore, Session, Tensor};
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Samples (graphs) per gradient step.
    pub batch_size: usize,
    /// Initial Adam learning rate.
    pub lr: f64,
    /// Multiplicative LR decay applied after each epoch.
    pub lr_decay: f64,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// Weight of the jitter column in the loss (delay has weight 1).
    pub jitter_weight: f64,
    /// Weight of the drop column in the loss. Drop probabilities live in
    /// [0, 1] while the other targets are z-scored, so a weight > 1
    /// compensates for the smaller scale.
    pub drop_weight: f64,
    /// Regress on log-space targets (aligns MSE with relative error).
    pub log_targets: bool,
    /// Early stopping: abort after this many epochs without a *significant*
    /// improvement (relative decrease > 1e-6) of the selection loss
    /// (validation loss, or training loss without a validation set).
    /// `None` disables.
    pub patience: Option<usize>,
    /// Worker threads for within-batch data parallelism (each sample's
    /// forward/backward is independent; gradients are reduced in sample
    /// order, so results are bit-identical for any thread count).
    /// 0 = use all available cores; 1 = sequential.
    pub threads: usize,
    /// Minibatch shuffling seed.
    pub shuffle_seed: u64,
    /// Restore the parameters of the best validation epoch at the end.
    pub keep_best: bool,
    /// Print one line per epoch to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 25,
            batch_size: 8,
            lr: 2e-3,
            lr_decay: 0.96,
            clip_norm: 5.0,
            jitter_weight: 0.3,
            drop_weight: 4.0,
            log_targets: true,
            patience: None,
            threads: 0,
            shuffle_seed: 7,
            keep_best: true,
            verbose: false,
        }
    }
}

/// Per-epoch record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Validation loss after the epoch (if a validation set was given).
    pub val_loss: Option<f64>,
    /// Learning rate used during the epoch.
    pub lr: f64,
}

/// Outcome of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Per-epoch loss curve.
    pub epochs: Vec<EpochStats>,
    /// Epoch with the lowest validation loss (or lowest train loss if no
    /// validation set).
    pub best_epoch: usize,
    /// The best loss value used for model selection.
    pub best_loss: f64,
}

/// One pre-compiled training item.
struct Item {
    compiled: CompiledScenario,
    /// Column-weighted normalized target (matches the model's out_dim).
    target: Tensor,
    /// Column weights applied to predictions before the MSE.
    col_weights: Tensor,
}

fn compile_items(
    model: &RouteNet,
    samples: &[Sample],
    jitter_weight: f64,
    drop_weight: f64,
) -> Vec<Item> {
    let out_dim = model.out_dim();
    let jitter_col = model.jitter_col();
    let drop_col = model.drop_col();
    samples
        .iter()
        .map(|s| {
            let compiled = model.compile(&s.scenario);
            let z = model.normalizer().normalize_targets(&s.targets);
            let n = s.targets.len();
            let jw = jitter_weight.sqrt();
            let dw = drop_weight.sqrt();
            // Rows with zero true delay are unobserved flows (the simulator
            // saw no packet): mask them out of the loss entirely.
            let observed: Vec<bool> = s.targets.iter().map(|t| t.delay_s > 0.0).collect();
            let target = Tensor::from_fn(n, out_dim, |r, c| {
                // lint: allow(panic, reason = "r < n == targets.len() == observed.len()")
                if !observed[r] {
                    0.0
                } else if c == 0 {
                    z.get(r, 0)
                } else if Some(c) == jitter_col {
                    z.get(r, 1) * jw
                } else {
                    // Drop head: raw probability (already in [0, 1]).
                    s.targets[r].drop_prob * dw // lint: allow(panic, reason = "r < n == targets.len()")
                }
            });
            let col_weights = Tensor::from_fn(n, out_dim, |r, c| {
                // lint: allow(panic, reason = "r < n == targets.len() == observed.len()")
                if !observed[r] {
                    0.0
                } else if c == 0 {
                    1.0
                } else if Some(c) == drop_col {
                    dw
                } else {
                    jw
                }
            });
            Item {
                compiled,
                target,
                col_weights,
            }
        })
        .collect()
}

/// INVARIANT: the loss scalar stays finite — inputs are normalized and the
/// tape asserts finiteness of every node value in debug builds.
fn item_loss(model: &RouteNet, item: &Item) -> (f64, Vec<(routenet_nn::ParamId, Tensor)>) {
    let mut sess = Session::new(model.store());
    let out = model.forward(&mut sess, &item.compiled);
    let weighted = sess.tape.mul_const(out, &item.col_weights);
    let loss = sess.tape.mse(weighted, &item.target);
    let loss_val = sess.tape.value(loss).get(0, 0);
    debug_assert!(loss_val.is_finite(), "non-finite training loss");
    let grads = sess.tape.backward(loss);
    let pg = sess.param_grads(&grads);
    (loss_val, pg)
}

fn item_loss_value(model: &RouteNet, item: &Item) -> f64 {
    let mut sess = Session::new(model.store());
    let out = model.forward(&mut sess, &item.compiled);
    let weighted = sess.tape.mul_const(out, &item.col_weights);
    let loss = sess.tape.mse(weighted, &item.target);
    sess.tape.value(loss).get(0, 0)
}

/// Per-sample losses and gradients for `chunk`, computed on up to `threads`
/// workers. Results are returned in `chunk` order, so the downstream
/// reduction is deterministic regardless of scheduling.
#[allow(clippy::type_complexity)]
fn batch_losses(
    model: &RouteNet,
    items: &[Item],
    chunk: &[usize],
    threads: usize,
) -> Vec<(f64, Vec<(routenet_nn::ParamId, Tensor)>)> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let workers = threads.min(chunk.len());
    if workers <= 1 {
        // lint: allow(panic, reason = "chunk indices are minted from 0..items.len() by the batch scheduler")
        return chunk.iter().map(|&i| item_loss(model, &items[i])).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel();
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(|_| {
                let tx = tx;
                loop {
                    let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if k >= chunk.len() {
                        break;
                    }
                    // lint: allow(panic, reason = "k < chunk.len() checked above; chunk indices minted from 0..items.len()")
                    tx.send((k, item_loss(model, &items[chunk[k]])))
                        .expect("collector alive"); // lint: allow(panic, reason = "receiver outlives the scope; it is dropped after join")
                }
            });
        }
    })
    .expect("training workers do not panic"); // lint: allow(panic, reason = "worker panics are programming errors; propagating them is the intent")
    drop(tx);
    let mut out: Vec<(usize, _)> = rx.into_iter().collect();
    out.sort_by_key(|(k, _)| *k);
    out.into_iter().map(|(_, v)| v).collect()
}

/// Train `model` on `train_set`, monitoring `val_set` (may be empty).
///
/// Fits the normalizer on `train_set`, then runs minibatch Adam. With
/// `keep_best`, the parameters of the best epoch (by validation loss, or by
/// training loss when `val_set` is empty) are restored before returning.
pub fn train(
    model: &mut RouteNet,
    train_set: &[Sample],
    val_set: &[Sample],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!train_set.is_empty(), "training set is empty");
    assert!(cfg.batch_size >= 1 && cfg.epochs >= 1);
    assert!(cfg.lr > 0.0 && cfg.lr_decay > 0.0 && cfg.lr_decay <= 1.0);

    model.set_normalizer(Normalizer::fit_with(train_set, cfg.log_targets));
    let train_items = compile_items(model, train_set, cfg.jitter_weight, cfg.drop_weight);
    let val_items = compile_items(model, val_set, cfg.jitter_weight, cfg.drop_weight);

    let mut opt = Adam::new(model.store(), cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);
    let mut order: Vec<usize> = (0..train_items.len()).collect();

    let mut report = TrainReport {
        epochs: Vec::with_capacity(cfg.epochs),
        best_epoch: 0,
        best_loss: f64::INFINITY,
    };
    let mut best_params: Option<ParamStore> = None;
    // Patience tracks *significant* improvements so that float-noise-level
    // decreases do not keep a stalled run alive.
    let mut last_significant = 0usize;
    let mut patience_best = f64::INFINITY;

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let mut acc = GradAccumulator::new(model.store());
            let mut batch_loss = 0.0;
            for (l, pg) in batch_losses(model, &train_items, chunk, cfg.threads) {
                batch_loss += l;
                acc.add(&pg);
            }
            let mut mean_grads = acc.take_mean();
            clip_global_norm(&mut mean_grads, cfg.clip_norm);
            opt.step(model.store_mut(), &mean_grads);
            epoch_loss += batch_loss / chunk.len() as f64;
            batches += 1;
        }
        let train_loss = epoch_loss / batches.max(1) as f64;
        let val_loss = if val_items.is_empty() {
            None
        } else {
            Some(
                val_items
                    .iter()
                    .map(|it| item_loss_value(model, it))
                    .sum::<f64>()
                    / val_items.len() as f64,
            )
        };
        let selection = val_loss.unwrap_or(train_loss);
        if selection < report.best_loss {
            report.best_loss = selection;
            report.best_epoch = epoch;
            if cfg.keep_best {
                best_params = Some(model.store().clone());
            }
        }
        if cfg.verbose {
            eprintln!(
                "epoch {epoch:3}  train {train_loss:.5}  val {}  lr {:.2e}",
                val_loss.map_or("-".into(), |v| format!("{v:.5}")),
                opt.lr
            );
        }
        report.epochs.push(EpochStats {
            epoch,
            train_loss,
            val_loss,
            lr: opt.lr,
        });
        opt.lr *= cfg.lr_decay;
        if selection < patience_best * (1.0 - 1e-6) {
            patience_best = selection;
            last_significant = epoch;
        }
        if let Some(patience) = cfg.patience {
            if epoch > last_significant + patience {
                if cfg.verbose {
                    eprintln!(
                        "early stop at epoch {epoch}: no significant improvement since epoch {last_significant}"
                    );
                }
                break;
            }
        }
    }

    if let Some(best) = best_params {
        *model.store_mut() = best;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RouteNetConfig;
    use crate::sample::{Scenario, TargetKpi};
    use routenet_netgraph::generate;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_simnet::queueing::Mm1Network;

    /// Tiny synthetic dataset whose labels come from the M/M/1 model — fast
    /// to generate and perfectly learnable.
    fn mm1_dataset(n_samples: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::ring(5);
        let routing = shortest_path_routing(&g).unwrap();
        (0..n_samples)
            .map(|i| {
                let tm = routenet_netgraph::traffic::sample_traffic_matrix(
                    &g,
                    &routing,
                    &routenet_netgraph::TrafficModel::Uniform { min_frac: 0.2 },
                    0.3 + 0.4 * (i as f64 / n_samples.max(1) as f64),
                    &mut rng,
                );
                let net = Mm1Network::build(&g, &routing, &tm, 1_000.0);
                let targets: Vec<TargetKpi> = net
                    .predict_all(&routing)
                    .into_iter()
                    .map(|p| TargetKpi {
                        delay_s: p.mean_delay_s,
                        jitter_s2: p.jitter_s2,
                        drop_prob: 0.0,
                    })
                    .collect();
                Sample {
                    scenario: Scenario {
                        graph: g.clone(),
                        routing: routing.clone(),
                        traffic: tm,
                    },
                    targets,
                    topology: "Ring-5".into(),
                    intensity: 0.5,
                    seed: i as u64,
                }
            })
            .collect()
    }

    fn tiny_model() -> RouteNet {
        RouteNet::new(RouteNetConfig {
            link_state_dim: 8,
            path_state_dim: 8,
            readout_hidden: 16,
            t_iterations: 3,
            predict_jitter: true,
            predict_drops: false,
            seed: 3,
        })
    }

    #[test]
    fn training_reduces_loss() {
        let data = mm1_dataset(24, 1);
        let (train_set, val_set) = data.split_at(20);
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 12,
            batch_size: 4,
            lr: 5e-3,
            verbose: false,
            ..TrainConfig::default()
        };
        let report = train(&mut model, train_set, val_set, &cfg);
        assert_eq!(report.epochs.len(), 12);
        let first = report.epochs.first().unwrap().train_loss;
        let last = report.epochs.last().unwrap().train_loss;
        assert!(last < first * 0.5, "loss did not halve: {first} -> {last}");
        //

        // After training on MM1 labels, predictions should correlate with
        // the truth on validation data.
        let preds: Vec<f64> = val_set
            .iter()
            .flat_map(|s| {
                model
                    .predict_scenario(&s.scenario)
                    .into_iter()
                    .map(|p| p.delay_s)
            })
            .collect();
        let truths: Vec<f64> = val_set
            .iter()
            .flat_map(|s| s.targets.iter().map(|t| t.delay_s))
            .collect();
        let r = crate::metrics::pearson(&preds, &truths);
        assert!(r > 0.8, "validation correlation too low: {r}");
    }

    #[test]
    fn keep_best_restores_best_epoch() {
        let data = mm1_dataset(8, 2);
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 4,
            lr: 5e-3,
            keep_best: true,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data[..6], &data[6..], &cfg);
        // The restored parameters must reproduce the best validation loss.
        let items = compile_items(&model, &data[6..], cfg.jitter_weight, cfg.drop_weight);
        let val: f64 = items
            .iter()
            .map(|it| item_loss_value(&model, it))
            .sum::<f64>()
            / items.len() as f64;
        assert!(
            (val - report.best_loss).abs() < 1e-9,
            "restored val {val} != best {}",
            report.best_loss
        );
    }

    #[test]
    fn report_tracks_lr_decay() {
        let data = mm1_dataset(4, 3);
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 2,
            lr: 1e-3,
            lr_decay: 0.5,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data, &[], &cfg);
        assert!((report.epochs[0].lr - 1e-3).abs() < 1e-15);
        assert!((report.epochs[1].lr - 5e-4).abs() < 1e-15);
        assert!((report.epochs[2].lr - 2.5e-4).abs() < 1e-15);
        assert!(report.epochs.iter().all(|e| e.val_loss.is_none()));
    }

    #[test]
    fn parallel_training_is_bit_identical_to_sequential() {
        let data = mm1_dataset(10, 6);
        let train_once = |threads: usize| {
            let mut model = tiny_model();
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 5,
                threads,
                keep_best: false,
                ..TrainConfig::default()
            };
            train(&mut model, &data[..8], &data[8..], &cfg);
            model
                .predict_scenario(&data[9].scenario)
                .iter()
                .map(|p| p.delay_s)
                .collect::<Vec<f64>>()
        };
        let seq = train_once(1);
        let par = train_once(4);
        assert_eq!(seq, par, "thread count changed the training result");
    }

    #[test]
    fn early_stopping_halts_training() {
        let data = mm1_dataset(6, 4);
        let mut model = tiny_model();
        // Zero learning rate: the loss can never improve after epoch 0, so
        // patience must cut the run short.
        let cfg = TrainConfig {
            epochs: 50,
            batch_size: 3,
            lr: 1e-12,
            patience: Some(2),
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data[..4], &data[4..], &cfg);
        assert!(
            report.epochs.len() <= 5,
            "expected early stop, ran {} epochs",
            report.epochs.len()
        );
        // best_epoch may still creep by float-noise improvements; the point
        // is that none of them were significant enough to reset patience.
        assert!(report.best_epoch < report.epochs.len());
    }

    #[test]
    fn patience_none_runs_all_epochs() {
        let data = mm1_dataset(4, 5);
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 2,
            lr: 1e-12,
            patience: None,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data, &[], &cfg);
        assert_eq!(report.epochs.len(), 4);
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn empty_training_set_panics() {
        let mut model = tiny_model();
        train(&mut model, &[], &[], &TrainConfig::default());
    }
}
