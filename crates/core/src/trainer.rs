//! Crash-safe minibatch training loop for RouteNet.
//!
//! Mirrors the original implementation's recipe — Adam on a (weighted) MSE
//! over z-scored delay/jitter targets, gradient clipping, multiplicative
//! learning-rate decay, and best-on-validation checkpointing — and wraps it
//! in a durability/recovery layer:
//!
//! * **Atomic checkpoints** ([`TrainConfig::checkpoint_path`] /
//!   [`TrainConfig::checkpoint_every`]): at epoch boundaries the complete
//!   [`TrainState`] (parameters, Adam moments and step count, normalizer,
//!   shuffle RNG state, loss curve, best snapshot, patience trackers) is
//!   written through the checksummed atomic writer.
//! * **Deterministic resume** ([`TrainConfig::resume_from`]): a run
//!   continued from a checkpoint produces bit-identical parameters and
//!   loss curve to an uninterrupted run. Each epoch's shuffle is derived
//!   purely from the persisted RNG state, so the stream re-joins exactly.
//! * **Divergence recovery**: a non-finite loss/gradient — or a loss spike
//!   beyond [`TrainConfig::max_spike_factor`] — rolls the run back to the
//!   last good epoch boundary, multiplies the learning rate by
//!   [`TrainConfig::lr_backoff`], and retries, up to
//!   [`TrainConfig::max_rollbacks`] times before giving up with
//!   [`TrainError::Diverged`].
//! * **Cooperative interruption** ([`TrainControl`]): setting the stop flag
//!   (e.g. from a Ctrl-C handler) converts interruption into "checkpoint
//!   the last epoch boundary and return cleanly" instead of data loss.

use crate::batch::BatchedScenario;
use crate::checkpoint::{CheckpointError, TrainState};
use crate::features::Normalizer;
use crate::model::{CompiledScenario, RouteNet};
use crate::sample::Sample;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use routenet_faults::FsHandle;
use routenet_nn::optim::{clip_global_norm, Adam};
use routenet_nn::{GradAccumulator, Session, Tape, Tensor};
use routenet_obs::{Event, Telemetry};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Samples (graphs) per gradient step.
    pub batch_size: usize,
    /// Initial Adam learning rate.
    pub lr: f64,
    /// Multiplicative LR decay applied after each epoch.
    pub lr_decay: f64,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// Weight of the jitter column in the loss (delay has weight 1).
    pub jitter_weight: f64,
    /// Weight of the drop column in the loss. Drop probabilities live in
    /// [0, 1] while the other targets are z-scored, so a weight > 1
    /// compensates for the smaller scale.
    pub drop_weight: f64,
    /// Regress on log-space targets (aligns MSE with relative error).
    pub log_targets: bool,
    /// Early stopping: abort after this many epochs without a *significant*
    /// improvement (relative decrease > 1e-6) of the selection loss
    /// (validation loss, or training loss without a validation set).
    /// `None` disables.
    pub patience: Option<usize>,
    /// Worker threads for within-batch data parallelism (each sample's
    /// forward/backward is independent; gradients are reduced in sample
    /// order, so results are bit-identical for any thread count).
    /// 0 = use all available cores; 1 = sequential.
    pub threads: usize,
    /// Pack each worker's share of a minibatch into one
    /// [`BatchedScenario`] and run a single forward/backward over the
    /// packed tape (true, the default) instead of one tape per sample
    /// (false). A pure execution-strategy knob: per-sample losses and
    /// gradients recovered from the packed tape are bitwise identical to
    /// the per-sample path, so the numeric trajectory — and resumability
    /// of old checkpoints — is unaffected. Like `threads`, it may differ
    /// between a checkpoint and the resuming run.
    #[serde(default = "default_batched")]
    pub batched: bool,
    /// Minibatch shuffling seed.
    pub shuffle_seed: u64,
    /// Restore the parameters of the best validation epoch at the end.
    pub keep_best: bool,
    /// Print one line per epoch to stderr.
    pub verbose: bool,
    /// Write an atomic, checksummed [`TrainState`] checkpoint to this path
    /// at epoch boundaries (and at run exit). `None` disables durability.
    pub checkpoint_path: Option<String>,
    /// Checkpoint every N completed epochs (only with `checkpoint_path`;
    /// a final checkpoint is always written at run exit).
    pub checkpoint_every: usize,
    /// Resume from a [`TrainState`] checkpoint instead of starting fresh.
    /// The checkpoint's model/trainer configuration must match (see
    /// [`TrainError::IncompatibleResume`]); `epochs` is read from `self`,
    /// so passing a larger value continues the run.
    pub resume_from: Option<String>,
    /// Divergence detection: treat an epoch whose training loss exceeds
    /// `factor * previous_loss` as diverged and roll it back. At epoch 0
    /// the reference is an evaluation pass at the initial parameters.
    /// `None` disables spike detection (non-finite values still recover).
    pub max_spike_factor: Option<f64>,
    /// Multiplier applied to the learning rate on every rollback.
    pub lr_backoff: f64,
    /// Total rollback budget for the run; exceeding it fails the run with
    /// [`TrainError::Diverged`].
    pub max_rollbacks: usize,
    /// Telemetry handle for per-epoch metrics, rollback events, and
    /// checkpoint write latency. Wiring, not configuration: it is skipped
    /// by serde (checkpoints stay byte-compatible) and always compares
    /// equal, so resume compatibility never depends on it.
    #[serde(skip)]
    pub telemetry: Telemetry,
    /// IO seam for checkpoint writes and resume reads. Wiring, not
    /// configuration, exactly like `telemetry`: skipped by serde and always
    /// compares equal. The default is the real filesystem with bounded
    /// exponential-backoff retry of transient errors; chaos tests swap in a
    /// fault-injecting handle.
    #[serde(skip)]
    pub fs: FsHandle,
}

/// Serde default for [`TrainConfig::batched`]: checkpoints written before
/// the field existed resume onto the batched path (safe because both paths
/// are bit-identical).
fn default_batched() -> bool {
    true
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 25,
            batch_size: 8,
            lr: 2e-3,
            lr_decay: 0.96,
            clip_norm: 5.0,
            jitter_weight: 0.3,
            drop_weight: 4.0,
            log_targets: true,
            patience: None,
            threads: 0,
            batched: default_batched(),
            shuffle_seed: 7,
            keep_best: true,
            verbose: false,
            checkpoint_path: None,
            checkpoint_every: 1,
            resume_from: None,
            max_spike_factor: None,
            lr_backoff: 0.5,
            max_rollbacks: 3,
            telemetry: Telemetry::disabled(),
            fs: FsHandle::default(),
        }
    }
}

/// Per-epoch record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Validation loss after the epoch (if a validation set was given).
    pub val_loss: Option<f64>,
    /// Learning rate used during the epoch.
    pub lr: f64,
}

/// Why an epoch was rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivergenceReason {
    /// A batch / epoch / validation loss went NaN or infinite.
    NonFiniteLoss,
    /// The global gradient norm went NaN or infinite.
    NonFiniteGradient,
    /// The training loss exceeded `max_spike_factor` times the reference.
    LossSpike,
}

impl std::fmt::Display for DivergenceReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergenceReason::NonFiniteLoss => f.write_str("non-finite loss"),
            DivergenceReason::NonFiniteGradient => f.write_str("non-finite gradient"),
            DivergenceReason::LossSpike => f.write_str("loss spike"),
        }
    }
}

/// One divergence-recovery action taken during training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Epoch that diverged (it was rolled back and retried).
    pub epoch: usize,
    /// What tripped the detector.
    pub reason: DivergenceReason,
    /// Learning rate the failed attempt ran with.
    pub lr_before: f64,
    /// Learning rate after the multiplicative backoff.
    pub lr_after: f64,
}

/// Outcome of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Per-epoch loss curve (accepted epochs only; rolled-back attempts
    /// appear in `recoveries` instead).
    pub epochs: Vec<EpochStats>,
    /// Epoch with the lowest validation loss (or lowest train loss if no
    /// validation set).
    pub best_epoch: usize,
    /// The best loss value used for model selection.
    pub best_loss: f64,
    /// Divergence-recovery events (rollback + LR backoff) that occurred.
    pub recoveries: Vec<RecoveryEvent>,
    /// True if the run was stopped cooperatively (see [`TrainControl`])
    /// before reaching its epoch target. The model holds the last epoch
    /// boundary's parameters, matching the written checkpoint.
    pub interrupted: bool,
}

/// Typed training failures.
#[derive(Debug)]
pub enum TrainError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// A hyperparameter was out of range.
    InvalidConfig(String),
    /// Divergence recovery exhausted its rollback budget. The model holds
    /// the last good parameters, and (when checkpointing is configured)
    /// the last good state was persisted for post-mortem resume.
    Diverged {
        /// Epoch that kept diverging.
        epoch: usize,
        /// Rollbacks consumed before giving up.
        rollbacks: usize,
        /// The final divergence trigger.
        reason: DivergenceReason,
    },
    /// Checkpoint persistence or restore failed.
    Checkpoint(CheckpointError),
    /// A resume checkpoint does not match the model or trainer config.
    IncompatibleResume(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyTrainingSet => f.write_str("training set is empty"),
            TrainError::InvalidConfig(msg) => write!(f, "invalid training config: {msg}"),
            TrainError::Diverged {
                epoch,
                rollbacks,
                reason,
            } => write!(
                f,
                "training diverged at epoch {epoch} ({reason}) after {rollbacks} rollbacks"
            ),
            TrainError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            TrainError::IncompatibleResume(msg) => write!(f, "cannot resume: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Cooperative run control: a shared stop flag checked at batch boundaries.
/// When set (e.g. by a Ctrl-C handler), training discards the partial
/// epoch, writes a checkpoint of the last epoch boundary (when configured),
/// and returns cleanly with [`TrainReport::interrupted`] set.
#[derive(Debug, Clone, Default)]
pub struct TrainControl {
    stop: Arc<AtomicBool>,
}

impl TrainControl {
    /// A control whose flag is not set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing shared flag (e.g. one a signal handler sets).
    pub fn with_flag(stop: Arc<AtomicBool>) -> Self {
        TrainControl { stop }
    }

    /// The shared flag, for handing to a signal handler or another thread.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Ask the run to stop at the next batch boundary.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// True once a stop has been requested.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// One pre-compiled training item.
struct Item {
    compiled: CompiledScenario,
    /// Column-weighted normalized target (matches the model's out_dim).
    target: Tensor,
    /// Column weights applied to predictions before the MSE.
    col_weights: Tensor,
}

fn compile_items(
    model: &RouteNet,
    samples: &[Sample],
    jitter_weight: f64,
    drop_weight: f64,
) -> Vec<Item> {
    let out_dim = model.out_dim();
    let jitter_col = model.jitter_col();
    let drop_col = model.drop_col();
    samples
        .iter()
        .map(|s| {
            let compiled = model.compile(&s.scenario);
            let z = model.normalizer().normalize_targets(&s.targets);
            let n = s.targets.len();
            let jw = jitter_weight.sqrt();
            let dw = drop_weight.sqrt();
            // Rows with zero true delay are unobserved flows (the simulator
            // saw no packet): mask them out of the loss entirely.
            let observed: Vec<bool> = s.targets.iter().map(|t| t.delay_s > 0.0).collect();
            let target = Tensor::from_fn(n, out_dim, |r, c| {
                // lint: allow(panic, reason = "r < n == targets.len() == observed.len()")
                if !observed[r] {
                    0.0
                } else if c == 0 {
                    z.get(r, 0)
                } else if Some(c) == jitter_col {
                    z.get(r, 1) * jw
                } else {
                    // Drop head: raw probability (already in [0, 1]).
                    s.targets[r].drop_prob * dw // lint: allow(panic, reason = "r < n == targets.len()")
                }
            });
            let col_weights = Tensor::from_fn(n, out_dim, |r, c| {
                // lint: allow(panic, reason = "r < n == targets.len() == observed.len()")
                if !observed[r] {
                    0.0
                } else if c == 0 {
                    1.0
                } else if Some(c) == drop_col {
                    dw
                } else {
                    jw
                }
            });
            Item {
                compiled,
                target,
                col_weights,
            }
        })
        .collect()
}

/// Forward/backward for one item. A non-finite loss or gradient is returned
/// as-is (the tape tracks poisoning instead of asserting); the epoch loop
/// treats it as divergence and rolls back to the last good state.
fn item_loss(model: &RouteNet, item: &Item) -> (f64, Vec<(routenet_nn::ParamId, Tensor)>) {
    let mut sess = Session::new(model.store());
    let out = model.forward(&mut sess, &item.compiled);
    let weighted = sess.tape.mul_const(out, &item.col_weights);
    let loss = sess.tape.mse(weighted, &item.target);
    let loss_val = sess.tape.value(loss).get(0, 0);
    let grads = sess.tape.backward(loss);
    let pg = sess.param_grads(&grads);
    (loss_val, pg)
}

fn item_loss_value(model: &RouteNet, item: &Item) -> f64 {
    let mut sess = Session::new(model.store());
    let out = model.forward(&mut sess, &item.compiled);
    let weighted = sess.tape.mul_const(out, &item.col_weights);
    let loss = sess.tape.mse(weighted, &item.target);
    sess.tape.value(loss).get(0, 0)
}

/// Per-sample losses and gradients for `chunk`, computed on up to `threads`
/// workers. Results are returned in `chunk` order, so the downstream
/// reduction is deterministic regardless of scheduling.
#[allow(clippy::type_complexity)]
fn batch_losses(
    model: &RouteNet,
    items: &[Item],
    chunk: &[usize],
    threads: usize,
) -> Vec<(f64, Vec<(routenet_nn::ParamId, Tensor)>)> {
    let workers = resolve_threads(threads).min(chunk.len());
    if workers <= 1 {
        // lint: allow(panic, reason = "chunk indices are minted from 0..items.len() by the batch scheduler")
        return chunk.iter().map(|&i| item_loss(model, &items[i])).collect();
    }
    // Blessed indexed write-slot pattern (DESIGN.md "Parallelism safety
    // contract"): worker `w` takes the strided indices w, w+workers, ... —
    // a deterministic assignment — computes into a worker-local Vec, and
    // returns it through its join handle. The sequential interleave below
    // restores `chunk` order, so the reduction never depends on scheduling.
    let parts: Vec<Vec<(f64, Vec<(routenet_nn::ParamId, Tensor)>)>> =
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                handles.push(scope.spawn(move |_| {
                    // lint: allow(hot-loop-alloc, reason = "one result Vec per worker thread, not per item")
                    let mut part = Vec::with_capacity(chunk.len().div_ceil(workers));
                    let mut k = w;
                    while k < chunk.len() {
                        // lint: allow(panic, reason = "k < chunk.len() checked by the stride loop; chunk indices minted from 0..items.len()")
                        part.push(item_loss(model, &items[chunk[k]]));
                        k += workers;
                    }
                    part
                }));
            }
            handles
                .into_iter()
                // lint: allow(panic, reason = "worker panics are programming errors; propagating them is the intent")
                .map(|h| h.join().expect("training workers do not panic"))
                .collect()
        })
        .expect("training scope joins cleanly"); // lint: allow(panic, reason = "worker panics are programming errors; propagating them is the intent")
    let mut iters: Vec<_> = parts.into_iter().map(Vec::into_iter).collect();
    (0..chunk.len())
        // lint: allow(panic, reason = "worker w holds exactly the indices k with k % workers == w, so each next() yields")
        .map(|k| iters[k % workers].next().expect("stride invariant"))
        .collect()
}

/// One sample's loss value and parameter gradients.
type SampleGrad = (f64, Vec<(routenet_nn::ParamId, Tensor)>);

/// Resolve a `threads` config value to a concrete worker count.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Row-concatenate the column weights and targets of `sub`'s items, in
/// order — the loss-side counterpart of [`BatchedScenario::pack`].
fn stack_loss_tensors(items: &[Item], sub: &[usize]) -> (Arc<Tensor>, Tensor) {
    let mut rows = 0usize;
    let mut cols = 0usize;
    for &i in sub {
        // lint: allow(panic, reason = "sub indices are minted from 0..items.len() by the batch scheduler")
        rows += items[i].target.rows();
        cols = items[i].target.cols(); // lint: allow(panic, reason = "sub indices are minted from 0..items.len() by the batch scheduler")
    }
    let mut wdata = Vec::with_capacity(rows * cols);
    let mut tdata = Vec::with_capacity(rows * cols);
    for &i in sub {
        // lint: allow(panic, reason = "sub indices are minted from 0..items.len() by the batch scheduler")
        wdata.extend_from_slice(items[i].col_weights.data());
        tdata.extend_from_slice(items[i].target.data()); // lint: allow(panic, reason = "sub indices are minted from 0..items.len() by the batch scheduler")
    }
    (
        Arc::new(Tensor::from_vec(rows, cols, wdata)),
        Tensor::from_vec(rows, cols, tdata),
    )
}

/// One packed forward/backward over the items selected by `sub`, on an
/// arena-reused tape. Returns per-sample `(loss, grads)` in `sub` order —
/// each entry bitwise identical to what [`item_loss`] computes for that
/// item on its own tape — plus the tape for the next pass.
fn batched_sub_losses(
    model: &RouteNet,
    items: &[Item],
    sub: &[usize],
    arena: Tape,
) -> (Vec<SampleGrad>, Tape) {
    // lint: allow(panic, reason = "sub indices are minted from 0..items.len() by the batch scheduler")
    let compiled: Vec<&CompiledScenario> = sub.iter().map(|&i| &items[i].compiled).collect();
    let batch = BatchedScenario::pack(&compiled);
    let (weights, targets) = stack_loss_tensors(items, sub);
    let mut sess = Session::with_tape(model.store(), arena);
    let out = model.forward_batch(&mut sess, &batch);
    let weighted = sess.tape.mul_const_shared(out, &weights);
    let seg_loss = sess.tape.seg_mse(weighted, &targets, batch.path_seg());
    let total = sess.tape.sum_all(seg_loss);
    let losses: Vec<f64> = (0..sub.len())
        .map(|s| sess.tape.value(seg_loss).get(s, 0))
        .collect();
    let grads = sess.tape.backward(total);
    let per_sample = sess.param_grads_seg(&grads, sub.len());
    let out: Vec<SampleGrad> = losses.into_iter().zip(per_sample).collect();
    (out, sess.into_tape())
}

/// Forward-only variant of [`batched_sub_losses`] for validation scoring:
/// per-sample loss values in `sub` order, no gradients, no backward pass.
fn batched_sub_loss_values(
    model: &RouteNet,
    items: &[Item],
    sub: &[usize],
    arena: Tape,
) -> (Vec<f64>, Tape) {
    // lint: allow(panic, reason = "sub indices are minted from 0..items.len() by the batch scheduler")
    let compiled: Vec<&CompiledScenario> = sub.iter().map(|&i| &items[i].compiled).collect();
    let batch = BatchedScenario::pack(&compiled);
    let (weights, targets) = stack_loss_tensors(items, sub);
    let mut sess = Session::with_tape(model.store(), arena);
    let out = model.forward_batch(&mut sess, &batch);
    let weighted = sess.tape.mul_const_shared(out, &weights);
    let seg_loss = sess.tape.seg_mse(weighted, &targets, batch.path_seg());
    let losses: Vec<f64> = (0..sub.len())
        .map(|s| sess.tape.value(seg_loss).get(s, 0))
        .collect();
    (losses, sess.into_tape())
}

/// Per-item loss values for all of `items` in index order, computed in
/// packed chunks of `batch_size` on one arena-reused tape. Each value is
/// bitwise identical to [`item_loss_value`] for that item.
fn batched_loss_values(
    model: &RouteNet,
    items: &[Item],
    batch_size: usize,
    arena: Tape,
) -> (Vec<f64>, Tape) {
    let idx: Vec<usize> = (0..items.len()).collect();
    let mut out = Vec::with_capacity(items.len());
    let mut arena = arena;
    for sub in idx.chunks(batch_size.max(1)) {
        let (losses, returned) = batched_sub_loss_values(model, items, sub, arena);
        arena = returned;
        out.extend_from_slice(&losses);
    }
    (out, arena)
}

/// Batched counterpart of [`batch_losses`]: worker `w` packs its strided
/// share of `chunk` (indices w, w+workers, ...) into one
/// [`BatchedScenario`] and runs a single forward/backward over it on its
/// own arena tape. The sequential interleave restores `chunk` order, so
/// the downstream reduction is byte-identical to the per-sample path at
/// any thread count.
fn batch_losses_batched(
    model: &RouteNet,
    items: &[Item],
    chunk: &[usize],
    threads: usize,
    arenas: &mut [Tape],
) -> Vec<SampleGrad> {
    let workers = resolve_threads(threads).min(chunk.len()).min(arenas.len());
    if workers <= 1 {
        // lint: allow(panic, reason = "train_with_control sizes arenas to at least one slot")
        let arena = std::mem::take(&mut arenas[0]);
        let (out, returned) = batched_sub_losses(model, items, chunk, arena);
        arenas[0] = returned; // lint: allow(panic, reason = "train_with_control sizes arenas to at least one slot")
        return out;
    }
    // Each worker owns its arena for the duration of the scope and returns
    // it through the join handle; the slots are refilled sequentially after
    // the join so no spawned closure writes shared state.
    let results: Vec<(Vec<SampleGrad>, Tape)> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (w, slot) in arenas.iter_mut().take(workers).enumerate() {
            let arena = std::mem::take(slot);
            handles.push(scope.spawn(move |_| {
                let sub: Vec<usize> = chunk.iter().copied().skip(w).step_by(workers).collect();
                batched_sub_losses(model, items, &sub, arena)
            }));
        }
        handles
            .into_iter()
            // lint: allow(panic, reason = "worker panics are programming errors; propagating them is the intent")
            .map(|h| h.join().expect("training workers do not panic"))
            .collect()
    })
    .expect("training scope joins cleanly"); // lint: allow(panic, reason = "worker panics are programming errors; propagating them is the intent")
    let mut parts = Vec::with_capacity(workers);
    for ((out, returned), slot) in results.into_iter().zip(arenas.iter_mut()) {
        *slot = returned;
        parts.push(out);
    }
    let mut iters: Vec<_> = parts.into_iter().map(Vec::into_iter).collect();
    (0..chunk.len())
        // lint: allow(panic, reason = "worker w holds exactly the indices k with k % workers == w, so each next() yields")
        .map(|k| iters[k % workers].next().expect("stride invariant"))
        .collect()
}

fn validate_config(cfg: &TrainConfig) -> Result<(), TrainError> {
    let check = |ok: bool, msg: &str| {
        if ok {
            Ok(())
        } else {
            Err(TrainError::InvalidConfig(msg.into()))
        }
    };
    check(cfg.batch_size >= 1, "batch_size must be >= 1")?;
    check(cfg.epochs >= 1, "epochs must be >= 1")?;
    check(cfg.lr > 0.0, "lr must be positive")?;
    check(
        cfg.lr_decay > 0.0 && cfg.lr_decay <= 1.0,
        "lr_decay must be in (0, 1]",
    )?;
    check(
        cfg.lr_backoff > 0.0 && cfg.lr_backoff < 1.0,
        "lr_backoff must be in (0, 1)",
    )?;
    check(cfg.checkpoint_every >= 1, "checkpoint_every must be >= 1")?;
    if let Some(f) = cfg.max_spike_factor {
        check(
            f.is_finite() && f > 0.0,
            "max_spike_factor must be finite and positive",
        )?;
    }
    Ok(())
}

/// The fields of [`TrainConfig`] that determine the numeric trajectory of a
/// run must match between the checkpoint and the resuming call; otherwise
/// the resumed run would silently differ from the uninterrupted one.
/// `epochs`, `threads`, `verbose`, and the checkpoint/resume paths are free
/// to change.
fn check_resume_compat(saved: &TrainConfig, cur: &TrainConfig) -> Result<(), TrainError> {
    macro_rules! require_eq {
        ($field:ident) => {
            if saved.$field != cur.$field {
                return Err(TrainError::IncompatibleResume(format!(
                    "config field `{}` differs from the checkpoint ({:?} vs {:?})",
                    stringify!($field),
                    saved.$field,
                    cur.$field
                )));
            }
        };
    }
    require_eq!(batch_size);
    require_eq!(lr);
    require_eq!(lr_decay);
    require_eq!(clip_norm);
    require_eq!(jitter_weight);
    require_eq!(drop_weight);
    require_eq!(log_targets);
    require_eq!(patience);
    require_eq!(shuffle_seed);
    require_eq!(keep_best);
    require_eq!(max_spike_factor);
    require_eq!(lr_backoff);
    require_eq!(max_rollbacks);
    Ok(())
}

/// Persist `state` through the atomic checkpoint writer (routed through the
/// config's IO seam), timing the write and emitting an
/// [`Event::CheckpointWrite`] record when telemetry is on.
fn save_checkpoint(
    state: &TrainState,
    path: &str,
    fs: &FsHandle,
    tel: &Telemetry,
) -> Result<(), TrainError> {
    let t0 = tel.enabled().then(Instant::now);
    state.save_with(fs.fs(), Path::new(path))?;
    if let Some(t0) = t0 {
        let write_s = t0.elapsed().as_secs_f64();
        let bytes = fs.metadata_len(Path::new(path)).unwrap_or(0);
        tel.emit(Event::CheckpointWrite {
            epoch: state.epoch_next,
            bytes,
            write_s,
        });
        tel.observe_s("train.checkpoint_write_s", write_s);
    }
    Ok(())
}

/// Install a snapshot's model-facing pieces back into the live run.
fn install_state(state: &TrainState, model: &mut RouteNet, opt: &mut Adam, rng: &mut StdRng) {
    *model.store_mut() = state.params.clone();
    *opt = state.opt.clone();
    *rng = StdRng::from_state(state.rng);
}

/// Train `model` on `train_set`, monitoring `val_set` (may be empty).
///
/// Fits the normalizer on `train_set`, then runs minibatch Adam. With
/// `keep_best`, the parameters of the best epoch (by validation loss, or by
/// training loss when `val_set` is empty) are restored before returning.
/// See the module docs for checkpointing, resume, and divergence recovery.
#[must_use = "dropping the report hides training divergence and early-stop diagnostics"]
pub fn train(
    model: &mut RouteNet,
    train_set: &[Sample],
    val_set: &[Sample],
    cfg: &TrainConfig,
) -> Result<TrainReport, TrainError> {
    train_with_control(model, train_set, val_set, cfg, &TrainControl::new())
}

/// [`train`] with an explicit [`TrainControl`] for cooperative interruption.
#[must_use = "dropping the report hides training divergence and early-stop diagnostics"]
pub fn train_with_control(
    model: &mut RouteNet,
    train_set: &[Sample],
    val_set: &[Sample],
    cfg: &TrainConfig,
    control: &TrainControl,
) -> Result<TrainReport, TrainError> {
    validate_config(cfg)?;
    if train_set.is_empty() {
        return Err(TrainError::EmptyTrainingSet);
    }

    // ---- establish the starting state (fresh or resumed) ----------------
    // `state` is always the last good epoch boundary: the rollback target
    // for divergence recovery and the payload of every checkpoint write.
    let mut state: TrainState = match &cfg.resume_from {
        Some(path) => {
            let st = TrainState::load_with(cfg.fs.fs(), Path::new(path))?;
            if st.model_config != *model.config() {
                return Err(TrainError::IncompatibleResume(
                    "checkpoint was trained with a different model architecture".into(),
                ));
            }
            check_resume_compat(&st.train_config, cfg)?;
            model.set_normalizer(st.norm.clone());
            st
        }
        None => {
            model.set_normalizer(Normalizer::fit_with(train_set, cfg.log_targets));
            TrainState::new(
                model.config().clone(),
                cfg.clone(),
                model.store().clone(),
                model.normalizer().clone(),
                Adam::new(model.store(), cfg.lr),
                StdRng::seed_from_u64(cfg.shuffle_seed).state(),
            )
        }
    };
    // Keep the persisted config in sync with the caller's (resume paths,
    // epoch targets etc. may legitimately change between sessions).
    state.train_config = cfg.clone();

    let train_items = compile_items(model, train_set, cfg.jitter_weight, cfg.drop_weight);
    let val_items = compile_items(model, val_set, cfg.jitter_weight, cfg.drop_weight);

    let mut opt = state.opt.clone();
    let mut rng = StdRng::from_state(state.rng);
    *model.store_mut() = state.params.clone();

    // One-shot cost probe: the autodiff-graph footprint of a single sample's
    // forward pass. Per-sample tape size dominates the trainer's time and
    // memory, so the summary table reports it alongside throughput.
    if cfg.telemetry.enabled() {
        if let Some(item) = train_items.first() {
            let mut sess = Session::new(model.store());
            let _probe = model.forward(&mut sess, &item.compiled);
            cfg.telemetry
                .gauge_set("train.tape_nodes_per_sample", sess.tape.len() as f64);
            cfg.telemetry.gauge_set(
                "train.tape_scalars_per_sample",
                sess.tape.value_scalars() as f64,
            );
            cfg.telemetry
                .gauge_set("train.param_scalars", model.store().n_scalars() as f64);
            cfg.telemetry
                .gauge_set("train.samples", train_set.len() as f64);
        }
    }

    // Arena story: one tape per training worker plus one for evaluation
    // passes, all owned here so their buffer pools persist across batches
    // and epochs — after the first pass the steady-state loop allocates
    // nothing. Workers take their tape by slot, so the arena a sub-batch
    // replays into is deterministic.
    let mut arenas: Vec<Tape> = (0..resolve_threads(cfg.threads).max(1))
        .map(|_| Tape::new())
        .collect();
    let mut eval_arena = Tape::new();

    // Spike-detection reference: the last accepted epoch's training loss,
    // or (for a fresh run with detection enabled) an evaluation pass over
    // the training set at the initial parameters.
    let mut spike_ref: Option<f64> = state.epochs.last().map(|e| e.train_loss);
    if spike_ref.is_none() && cfg.max_spike_factor.is_some() {
        let base = if cfg.batched {
            let (losses, returned) = batched_loss_values(
                model,
                &train_items,
                cfg.batch_size,
                std::mem::take(&mut eval_arena),
            );
            eval_arena = returned;
            losses.iter().sum::<f64>() / train_items.len() as f64
        } else {
            train_items
                .iter()
                .map(|it| item_loss_value(model, it))
                .sum::<f64>()
                / train_items.len() as f64
        };
        spike_ref = Some(base);
    }

    let mut order: Vec<usize> = (0..train_items.len()).collect();
    let mut epoch = state.epoch_next;
    let mut interrupted = control.stop_requested();

    'epochs: while epoch < cfg.epochs && !interrupted {
        // The shuffle depends only on the persisted RNG state (the order is
        // reset to identity first), so rollback and resume replay it.
        order.sort_unstable();
        order.shuffle(&mut rng);
        let epoch_t0 = cfg.telemetry.enabled().then(Instant::now);
        let mut epoch_loss = 0.0;
        let mut grad_norm_sum = 0.0;
        let mut batches = 0usize;
        let mut diverged: Option<DivergenceReason> = None;
        for chunk in order.chunks(cfg.batch_size) {
            if control.stop_requested() {
                interrupted = true;
                break;
            }
            let mut acc = GradAccumulator::new(model.store());
            let mut batch_loss = 0.0;
            let sample_grads = if cfg.batched {
                batch_losses_batched(model, &train_items, chunk, cfg.threads, &mut arenas)
            } else {
                batch_losses(model, &train_items, chunk, cfg.threads)
            };
            for (l, pg) in sample_grads {
                batch_loss += l;
                acc.add(&pg);
            }
            if !batch_loss.is_finite() {
                diverged = Some(DivergenceReason::NonFiniteLoss);
                break;
            }
            let mut mean_grads = acc.take_mean();
            let grad_norm = clip_global_norm(&mut mean_grads, cfg.clip_norm);
            if !grad_norm.is_finite() {
                diverged = Some(DivergenceReason::NonFiniteGradient);
                break;
            }
            opt.step(model.store_mut(), &mean_grads);
            epoch_loss += batch_loss / chunk.len() as f64;
            grad_norm_sum += grad_norm;
            batches += 1;
        }
        if interrupted {
            // Discard the partial epoch: restore the boundary so the model,
            // the report, and the checkpoint all agree.
            install_state(&state, model, &mut opt, &mut rng);
            break 'epochs;
        }
        let train_loss = epoch_loss / batches.max(1) as f64;
        if diverged.is_none() && !train_loss.is_finite() {
            diverged = Some(DivergenceReason::NonFiniteLoss);
        }
        let val_loss = if diverged.is_some() || val_items.is_empty() {
            None
        } else if cfg.batched {
            let (losses, returned) = batched_loss_values(
                model,
                &val_items,
                cfg.batch_size,
                std::mem::take(&mut eval_arena),
            );
            eval_arena = returned;
            Some(losses.iter().sum::<f64>() / val_items.len() as f64)
        } else {
            Some(
                val_items
                    .iter()
                    .map(|it| item_loss_value(model, it))
                    .sum::<f64>()
                    / val_items.len() as f64,
            )
        };
        if diverged.is_none() {
            if let Some(v) = val_loss {
                if !v.is_finite() {
                    diverged = Some(DivergenceReason::NonFiniteLoss);
                }
            }
        }
        if diverged.is_none() {
            if let (Some(factor), Some(reference)) = (cfg.max_spike_factor, spike_ref) {
                if train_loss > factor * reference {
                    diverged = Some(DivergenceReason::LossSpike);
                }
            }
        }

        if let Some(reason) = diverged {
            // ---- rollback to the last good boundary + LR backoff --------
            let lr_before = state.opt.lr;
            if state.rollbacks >= cfg.max_rollbacks {
                install_state(&state, model, &mut opt, &mut rng);
                if let Some(path) = &cfg.checkpoint_path {
                    // lint: allow(hot-loop-lock, reason = "terminal divergence exit: one telemetry lock on the way out, not per-iteration work")
                    save_checkpoint(&state, path, &cfg.fs, &cfg.telemetry)?;
                }
                return Err(TrainError::Diverged {
                    epoch,
                    rollbacks: state.rollbacks,
                    reason,
                });
            }
            state.rollbacks += 1;
            state.opt.lr *= cfg.lr_backoff;
            state.recoveries.push(RecoveryEvent {
                epoch,
                reason,
                lr_before,
                lr_after: state.opt.lr,
            });
            if cfg.telemetry.enabled() {
                cfg.telemetry.counter_add("train.rollbacks", 1);
                cfg.telemetry.emit(Event::Rollback {
                    epoch,
                    reason: reason.to_string(), // lint: allow(hot-loop-alloc, reason = "rollbacks are exceptional recovery events, not per-iteration work")
                    lr_before,
                    lr_after: state.opt.lr,
                });
            }
            install_state(&state, model, &mut opt, &mut rng);
            if cfg.verbose {
                eprintln!(
                    "epoch {epoch:3}  DIVERGED ({reason}); rollback {}/{} with lr {:.2e} -> {:.2e}",
                    state.rollbacks, cfg.max_rollbacks, lr_before, state.opt.lr
                );
            }
            continue 'epochs; // retry the same epoch index
        }

        // ---- accepted epoch: advance trackers and the boundary ----------
        let selection = val_loss.unwrap_or(train_loss);
        if selection < state.best_loss() {
            state.set_best_loss(selection);
            state.best_epoch = epoch;
            if cfg.keep_best {
                // Reuse the previous snapshot's buffers: after the first
                // improvement this copies in place instead of reallocating.
                match &mut state.best_params {
                    Some(best) => best.copy_from(model.store()),
                    None => state.best_params = Some(model.store().clone()), // lint: allow(hot-loop-alloc, reason = "first best-snapshot only; every later improvement reuses these buffers via copy_from")
                }
            }
        }
        if cfg.verbose {
            match val_loss {
                Some(v) => eprintln!(
                    "epoch {epoch:3}  train {train_loss:.5}  val {v:.5}  lr {:.2e}",
                    opt.lr
                ),
                None => eprintln!(
                    "epoch {epoch:3}  train {train_loss:.5}  val -  lr {:.2e}",
                    opt.lr
                ),
            }
        }
        state.epochs.push(EpochStats {
            epoch,
            train_loss,
            val_loss,
            lr: opt.lr,
        });
        if let Some(t0) = epoch_t0 {
            let wall = t0.elapsed().as_secs_f64();
            cfg.telemetry.emit(Event::Epoch {
                epoch,
                train_loss,
                val_loss,
                lr: opt.lr,
                grad_norm: grad_norm_sum / batches.max(1) as f64,
                samples_per_s: train_items.len() as f64 / wall.max(1e-9),
            });
            cfg.telemetry.counter_add("train.epochs", 1);
            cfg.telemetry.observe_s("train.epoch_s", wall);
        }
        opt.lr *= cfg.lr_decay;
        if selection < state.patience_best() * (1.0 - 1e-6) {
            state.set_patience_best(selection);
            state.last_significant = epoch;
        }
        spike_ref = Some(train_loss);

        state.params.copy_from(model.store());
        state.opt.copy_state_from(&opt);
        state.rng = rng.state();
        state.epoch_next = epoch + 1;

        if let Some(path) = &cfg.checkpoint_path {
            if state.epoch_next.is_multiple_of(cfg.checkpoint_every) {
                // lint: allow(hot-loop-lock, reason = "epoch-boundary checkpoint telemetry: one lock per checkpoint interval, not per-iteration work")
                save_checkpoint(&state, path, &cfg.fs, &cfg.telemetry)?;
            }
        }

        if let Some(patience) = cfg.patience {
            if epoch > state.last_significant + patience {
                if cfg.verbose {
                    eprintln!(
                        "early stop at epoch {epoch}: no significant improvement since epoch {}",
                        state.last_significant
                    );
                }
                break;
            }
        }
        epoch += 1;
    }

    // Arena telemetry: high-water tape footprint across all worker and
    // eval arenas, plus how often a pass was served from recycled buffers.
    // Steady-state health check: hits should dwarf misses after epoch one.
    if cfg.telemetry.enabled() {
        let tapes = arenas.iter().chain(std::iter::once(&eval_arena));
        let mut max_nodes = 0usize;
        let mut max_scalars = 0usize;
        let mut hits = 0u64;
        let mut misses = 0u64;
        for t in tapes {
            max_nodes = max_nodes.max(t.max_nodes());
            max_scalars = max_scalars.max(t.max_scalars());
            hits += t.reuse_hits();
            misses += t.reuse_misses();
        }
        cfg.telemetry
            .gauge_set("train.tape_max_nodes", max_nodes as f64);
        cfg.telemetry
            .gauge_set("train.tape_max_scalars", max_scalars as f64);
        cfg.telemetry.counter_add("train.arena_reuse_hits", hits);
        cfg.telemetry
            .counter_add("train.arena_reuse_misses", misses);
    }

    // A final checkpoint at run exit (normal completion, early stop, or
    // interruption) so the on-disk state always matches the returned run.
    if let Some(path) = &cfg.checkpoint_path {
        save_checkpoint(&state, path, &cfg.fs, &cfg.telemetry)?;
    }

    let report = TrainReport {
        epochs: state.epochs.clone(),
        best_epoch: state.best_epoch,
        best_loss: state.best_loss(),
        recoveries: state.recoveries.clone(),
        interrupted,
    };
    // Restore the best parameters only for completed runs; an interrupted
    // run leaves the model at the checkpointed boundary so disk and memory
    // agree (the best snapshot itself is inside the checkpoint).
    if !interrupted && cfg.keep_best {
        if let Some(best) = &state.best_params {
            *model.store_mut() = best.clone();
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RouteNetConfig;
    use crate::sample::{Scenario, TargetKpi};
    use routenet_netgraph::generate;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_simnet::queueing::Mm1Network;

    /// Tiny synthetic dataset whose labels come from the M/M/1 model — fast
    /// to generate and perfectly learnable.
    fn mm1_dataset(n_samples: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::ring(5);
        let routing = shortest_path_routing(&g).unwrap();
        (0..n_samples)
            .map(|i| {
                let tm = routenet_netgraph::traffic::sample_traffic_matrix(
                    &g,
                    &routing,
                    &routenet_netgraph::TrafficModel::Uniform { min_frac: 0.2 },
                    0.3 + 0.4 * (i as f64 / n_samples.max(1) as f64),
                    &mut rng,
                );
                let net = Mm1Network::build(&g, &routing, &tm, 1_000.0);
                let targets: Vec<TargetKpi> = net
                    .predict_all(&routing)
                    .into_iter()
                    .map(|p| TargetKpi {
                        delay_s: p.mean_delay_s,
                        jitter_s2: p.jitter_s2,
                        drop_prob: 0.0,
                    })
                    .collect();
                Sample {
                    scenario: Scenario {
                        graph: g.clone(),
                        routing: routing.clone(),
                        traffic: tm,
                    },
                    targets,
                    topology: "Ring-5".into(),
                    intensity: 0.5,
                    seed: i as u64,
                }
            })
            .collect()
    }

    fn tiny_model() -> RouteNet {
        RouteNet::new(RouteNetConfig {
            link_state_dim: 8,
            path_state_dim: 8,
            readout_hidden: 16,
            t_iterations: 3,
            predict_jitter: true,
            predict_drops: false,
            seed: 3,
        })
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rn-trainer-{tag}-{}.ckpt", std::process::id()))
    }

    #[test]
    fn training_reduces_loss() {
        let data = mm1_dataset(24, 1);
        let (train_set, val_set) = data.split_at(20);
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 12,
            batch_size: 4,
            lr: 5e-3,
            verbose: false,
            ..TrainConfig::default()
        };
        let report = train(&mut model, train_set, val_set, &cfg).unwrap();
        assert_eq!(report.epochs.len(), 12);
        assert!(!report.interrupted);
        assert!(report.recoveries.is_empty());
        let first = report.epochs.first().unwrap().train_loss;
        let last = report.epochs.last().unwrap().train_loss;
        assert!(last < first * 0.5, "loss did not halve: {first} -> {last}");

        // After training on MM1 labels, predictions should correlate with
        // the truth on validation data.
        let preds: Vec<f64> = val_set
            .iter()
            .flat_map(|s| {
                model
                    .predict_scenario(&s.scenario)
                    .into_iter()
                    .map(|p| p.delay_s)
            })
            .collect();
        let truths: Vec<f64> = val_set
            .iter()
            .flat_map(|s| s.targets.iter().map(|t| t.delay_s))
            .collect();
        let r = crate::metrics::pearson(&preds, &truths);
        assert!(r > 0.8, "validation correlation too low: {r}");
    }

    #[test]
    fn keep_best_restores_best_epoch() {
        let data = mm1_dataset(8, 2);
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 4,
            lr: 5e-3,
            keep_best: true,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data[..6], &data[6..], &cfg).unwrap();
        // The restored parameters must reproduce the best validation loss.
        let items = compile_items(&model, &data[6..], cfg.jitter_weight, cfg.drop_weight);
        let val: f64 = items
            .iter()
            .map(|it| item_loss_value(&model, it))
            .sum::<f64>()
            / items.len() as f64;
        assert!(
            (val - report.best_loss).abs() < 1e-9,
            "restored val {val} != best {}",
            report.best_loss
        );
    }

    #[test]
    fn report_tracks_lr_decay() {
        let data = mm1_dataset(4, 3);
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 2,
            lr: 1e-3,
            lr_decay: 0.5,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data, &[], &cfg).unwrap();
        assert!((report.epochs[0].lr - 1e-3).abs() < 1e-15);
        assert!((report.epochs[1].lr - 5e-4).abs() < 1e-15);
        assert!((report.epochs[2].lr - 2.5e-4).abs() < 1e-15);
        assert!(report.epochs.iter().all(|e| e.val_loss.is_none()));
    }

    #[test]
    fn parallel_training_is_bit_identical_to_sequential() {
        let data = mm1_dataset(10, 6);
        let train_once = |threads: usize| {
            let mut model = tiny_model();
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 5,
                threads,
                keep_best: false,
                ..TrainConfig::default()
            };
            train(&mut model, &data[..8], &data[8..], &cfg).unwrap();
            model
                .predict_scenario(&data[9].scenario)
                .iter()
                .map(|p| p.delay_s)
                .collect::<Vec<f64>>()
        };
        let seq = train_once(1);
        let par = train_once(4);
        assert_eq!(seq, par, "thread count changed the training result");
    }

    #[test]
    fn train_config_batched_defaults_on_for_old_checkpoints() {
        // Checkpoints written before the field existed must deserialize
        // onto the batched path (both paths are bit-identical anyway).
        let json = serde_json::to_string(&TrainConfig::default()).unwrap();
        let stripped = json.replace("\"batched\":true,", "");
        assert_ne!(json, stripped, "expected a batched field to strip");
        let cfg: TrainConfig = serde_json::from_str(&stripped).unwrap();
        assert!(cfg.batched);
    }

    #[test]
    fn batched_training_is_bit_identical_to_per_sample() {
        let data = mm1_dataset(10, 17);
        let train_once = |batched: bool, threads: usize| {
            let mut model = tiny_model();
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 5,
                threads,
                batched,
                keep_best: false,
                ..TrainConfig::default()
            };
            let report = train(&mut model, &data[..8], &data[8..], &cfg).unwrap();
            (model.store().clone(), report.epochs)
        };
        let (seq_params, seq_curve) = train_once(false, 1);
        let (bat_params, bat_curve) = train_once(true, 1);
        assert_eq!(seq_params, bat_params, "batched mode changed the params");
        assert_eq!(seq_curve, bat_curve, "batched mode changed the loss curve");
        let (par_params, par_curve) = train_once(true, 4);
        assert_eq!(
            seq_params, par_params,
            "threaded batched mode changed the params"
        );
        assert_eq!(
            seq_curve, par_curve,
            "threaded batched mode changed the loss curve"
        );
    }

    #[test]
    fn early_stopping_halts_training() {
        let data = mm1_dataset(6, 4);
        let mut model = tiny_model();
        // Zero learning rate: the loss can never improve after epoch 0, so
        // patience must cut the run short.
        let cfg = TrainConfig {
            epochs: 50,
            batch_size: 3,
            lr: 1e-12,
            patience: Some(2),
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data[..4], &data[4..], &cfg).unwrap();
        assert!(
            report.epochs.len() <= 5,
            "expected early stop, ran {} epochs",
            report.epochs.len()
        );
        // best_epoch may still creep by float-noise improvements; the point
        // is that none of them were significant enough to reset patience.
        assert!(report.best_epoch < report.epochs.len());
    }

    #[test]
    fn patience_none_runs_all_epochs() {
        let data = mm1_dataset(4, 5);
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 2,
            lr: 1e-12,
            patience: None,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data, &[], &cfg).unwrap();
        assert_eq!(report.epochs.len(), 4);
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let mut model = tiny_model();
        let err = train(&mut model, &[], &[], &TrainConfig::default()).unwrap_err();
        assert!(
            matches!(err, TrainError::EmptyTrainingSet),
            "expected EmptyTrainingSet, got {err:?}"
        );
    }

    #[test]
    fn invalid_config_is_an_error() {
        let data = mm1_dataset(2, 8);
        let mut model = tiny_model();
        let cfg = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        let err = train(&mut model, &data, &[], &cfg).unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "got {err:?}");
    }

    #[test]
    fn nan_divergence_rolls_back_and_recovers() {
        let data = mm1_dataset(6, 9);
        let mut model = tiny_model();
        // An absurd learning rate explodes the parameters to non-finite
        // territory within the first epoch; the backoff is sized so that a
        // single rollback lands on a sane rate and training proceeds.
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 3,
            lr: 1e160,
            lr_backoff: 1e-163,
            max_rollbacks: 3,
            keep_best: false,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data[..4], &data[4..], &cfg).unwrap();
        assert!(
            !report.recoveries.is_empty(),
            "expected at least one rollback"
        );
        let rec = report.recoveries[0];
        assert!(rec.lr_after < rec.lr_before);
        assert_eq!(rec.epoch, 0);
        assert_eq!(
            report.epochs.len(),
            3,
            "run did not complete after recovery"
        );
        assert!(
            report.epochs.iter().all(|e| e.train_loss.is_finite()),
            "accepted epochs must have finite losses"
        );
        // The recovered run trains at the backed-off rate.
        assert!(report.epochs[0].lr < 1.0);
    }

    #[test]
    fn divergence_budget_exhaustion_is_an_error() {
        let data = mm1_dataset(4, 10);
        let mut model = tiny_model();
        // Backoff of 0.9 keeps the rate absurd, so every retry diverges
        // again until the budget runs out.
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 2,
            lr: 1e160,
            lr_backoff: 0.9,
            max_rollbacks: 2,
            ..TrainConfig::default()
        };
        let err = train(&mut model, &data, &[], &cfg).unwrap_err();
        match err {
            TrainError::Diverged {
                epoch, rollbacks, ..
            } => {
                assert_eq!(epoch, 0);
                assert_eq!(rollbacks, 2);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn loss_spike_detection_trips_and_reports() {
        let data = mm1_dataset(4, 11);
        let mut model = tiny_model();
        // With a spike factor far below 1 and a learning rate too small to
        // improve anything, every epoch reads as a spike over the initial
        // evaluation baseline and the budget drains.
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 2,
            lr: 1e-12,
            max_spike_factor: Some(1e-12),
            max_rollbacks: 1,
            ..TrainConfig::default()
        };
        let err = train(&mut model, &data, &[], &cfg).unwrap_err();
        match err {
            TrainError::Diverged { reason, .. } => {
                assert_eq!(reason, DivergenceReason::LossSpike);
            }
            other => panic!("expected Diverged(LossSpike), got {other:?}"),
        }
    }

    #[test]
    fn checkpointing_writes_a_loadable_state() {
        let data = mm1_dataset(5, 12);
        let path = tmp_path("loadable");
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 2,
            checkpoint_path: Some(path.to_string_lossy().into_owned()),
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data[..4], &data[4..], &cfg).unwrap();
        let state = TrainState::load(&path).unwrap();
        assert_eq!(state.epoch_next, 2);
        assert_eq!(state.epochs.len(), report.epochs.len());
        assert_eq!(state.best_epoch, report.best_epoch);
        // keep_best defaults on, so the snapshot carries the best params and
        // into_model() reproduces the returned model exactly.
        let restored = state.into_model().unwrap();
        assert_eq!(restored.store(), model.store());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pre_stopped_control_checkpoints_and_exits_cleanly() {
        let data = mm1_dataset(4, 13);
        let path = tmp_path("interrupt");
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 2,
            checkpoint_path: Some(path.to_string_lossy().into_owned()),
            ..TrainConfig::default()
        };
        let control = TrainControl::new();
        control.request_stop();
        let report = train_with_control(&mut model, &data, &[], &cfg, &control).unwrap();
        assert!(report.interrupted);
        assert!(report.epochs.is_empty());
        // The checkpoint exists and resumes from epoch 0.
        let state = TrainState::load(&path).unwrap();
        assert_eq!(state.epoch_next, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_is_bit_identical_to_uninterrupted_run() {
        let data = mm1_dataset(10, 14);
        let (train_set, val_set) = data.split_at(8);
        let path = tmp_path("resume");

        // Uninterrupted: 4 epochs straight.
        let mut full = tiny_model();
        let cfg4 = TrainConfig {
            epochs: 4,
            batch_size: 3,
            lr: 5e-3,
            ..TrainConfig::default()
        };
        let full_report = train(&mut full, train_set, val_set, &cfg4).unwrap();

        // Interrupted: 2 epochs with a checkpoint, then resume for 2 more.
        let mut half = tiny_model();
        let cfg2 = TrainConfig {
            epochs: 2,
            checkpoint_path: Some(path.to_string_lossy().into_owned()),
            ..cfg4.clone()
        };
        train(&mut half, train_set, val_set, &cfg2).unwrap();
        let mut resumed = tiny_model();
        let cfg_resume = TrainConfig {
            epochs: 4,
            resume_from: Some(path.to_string_lossy().into_owned()),
            checkpoint_path: None,
            ..cfg4.clone()
        };
        let resumed_report = train(&mut resumed, train_set, val_set, &cfg_resume).unwrap();

        // Bit-identical: parameters and the full loss curve.
        assert_eq!(full.store(), resumed.store());
        assert_eq!(full_report.epochs, resumed_report.epochs);
        assert_eq!(full_report.best_epoch, resumed_report.best_epoch);
        assert_eq!(
            full_report.best_loss.to_bits(),
            resumed_report.best_loss.to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_across_execution_modes_is_bit_identical() {
        let data = mm1_dataset(10, 15);
        let (train_set, val_set) = data.split_at(8);
        let path = tmp_path("resume_xmode");

        // Uninterrupted reference: 4 epochs on the (default) batched path.
        let mut full = tiny_model();
        let cfg4 = TrainConfig {
            epochs: 4,
            batch_size: 3,
            lr: 5e-3,
            ..TrainConfig::default()
        };
        let full_report = train(&mut full, train_set, val_set, &cfg4).unwrap();

        // Checkpoint written by the sequential per-sample path...
        let mut half = tiny_model();
        let cfg_seq = TrainConfig {
            epochs: 2,
            batched: false,
            checkpoint_path: Some(path.to_string_lossy().into_owned()),
            ..cfg4.clone()
        };
        train(&mut half, train_set, val_set, &cfg_seq).unwrap();

        // ...resumes under the batched kernel: execution strategy is not
        // part of the resume-compat contract, and because the two paths are
        // bit-identical the crossover leaves no trace in the result.
        let mut resumed = tiny_model();
        let cfg_resume = TrainConfig {
            epochs: 4,
            batched: true,
            resume_from: Some(path.to_string_lossy().into_owned()),
            checkpoint_path: None,
            ..cfg4.clone()
        };
        let resumed_report = train(&mut resumed, train_set, val_set, &cfg_resume).unwrap();

        assert_eq!(full.store(), resumed.store());
        assert_eq!(full_report.epochs, resumed_report.epochs);
        assert_eq!(
            full_report.best_loss.to_bits(),
            resumed_report.best_loss.to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn telemetry_records_epochs_rollbacks_and_checkpoints() {
        let data = mm1_dataset(6, 16);
        let path = tmp_path("telemetry");
        let tel = Telemetry::in_memory("core", "test");
        let mut model = tiny_model();
        // The absurd learning rate forces at least one rollback before the
        // backoff lands on a sane rate (same recipe as the recovery test).
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 3,
            lr: 1e160,
            lr_backoff: 1e-163,
            max_rollbacks: 3,
            keep_best: false,
            checkpoint_path: Some(path.to_string_lossy().into_owned()),
            telemetry: tel.clone(),
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data[..4], &data[4..], &cfg).unwrap();
        let records = tel.records();
        let count = |kind: &str| records.iter().filter(|r| r.event.kind() == kind).count();
        assert_eq!(count("Epoch"), report.epochs.len());
        assert_eq!(count("Rollback"), report.recoveries.len());
        assert!(!report.recoveries.is_empty(), "expected a rollback");
        assert!(count("CheckpointWrite") >= 1);
        assert_eq!(tel.counter("train.epochs"), report.epochs.len() as u64);
        assert!(tel.gauge("train.tape_nodes_per_sample").unwrap_or(0.0) > 0.0);
        assert!(tel.gauge("train.tape_max_nodes").unwrap_or(0.0) > 0.0);
        assert!(tel.gauge("train.tape_max_scalars").unwrap_or(0.0) > 0.0);
        // Every pass after the very first replays into recycled buffers.
        assert!(tel.counter("train.arena_reuse_hits") > 0);
        assert!(tel.histogram_summary("train.epoch_s").is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let data = mm1_dataset(4, 15);
        let path = tmp_path("mismatch");
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 2,
            checkpoint_path: Some(path.to_string_lossy().into_owned()),
            ..TrainConfig::default()
        };
        train(&mut model, &data, &[], &cfg).unwrap();

        let mut other = tiny_model();
        let bad = TrainConfig {
            epochs: 2,
            batch_size: 3, // differs from the checkpointed run
            resume_from: Some(path.to_string_lossy().into_owned()),
            ..TrainConfig::default()
        };
        let err = train(&mut other, &data, &[], &bad).unwrap_err();
        assert!(
            matches!(err, TrainError::IncompatibleResume(_)),
            "got {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }
}
