//! Data model: scenarios (RouteNet inputs) and labeled samples.
//!
//! A [`Scenario`] is exactly the triple the paper feeds RouteNet — topology,
//! source/destination routing, traffic matrix. A [`Sample`] adds the
//! simulator-provided ground truth (per-pair mean delay and jitter) plus
//! provenance metadata.

use routenet_netgraph::{Graph, NodeId, RoutingScheme, TrafficMatrix};
use serde::{Deserialize, Serialize};

/// Ground-truth KPIs for one source/destination pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetKpi {
    /// Mean per-packet end-to-end delay, seconds.
    /// unit: s
    pub delay_s: f64,
    /// Delay variance ("jitter"), s².
    /// unit: s^2
    pub jitter_s2: f64,
    /// Drop probability within the measurement window (0 with infinite
    /// buffers; labels for the finite-buffer extension experiment).
    /// unit: ratio
    #[serde(default)]
    pub drop_prob: f64,
}

/// RouteNet's input triple.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Network topology.
    pub graph: Graph,
    /// One path per ordered node pair.
    pub routing: RoutingScheme,
    /// Offered traffic per ordered node pair, bits/s.
    pub traffic: TrafficMatrix,
}

impl Scenario {
    /// Ordered `(src, dst)` pairs in the canonical order used for labels and
    /// predictions.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.graph.node_pairs().collect()
    }

    /// Number of routed pairs.
    pub fn n_pairs(&self) -> usize {
        self.routing.n_pairs()
    }

    /// Restore internal indices after deserialization.
    pub fn finalize(&mut self) {
        self.graph.rebuild_index();
    }

    /// Cross-validate the three components against each other.
    #[must_use = "an unchecked validation result defeats the purpose of validating"]
    pub fn validate(&self) -> Result<(), String> {
        if self.traffic.n_nodes() != self.graph.n_nodes() {
            return Err(format!(
                "traffic matrix is {}x, graph has {} nodes",
                self.traffic.n_nodes(),
                self.graph.n_nodes()
            ));
        }
        self.routing
            .validate(&self.graph)
            .map_err(|e| e.to_string())
    }
}

/// A labeled training/evaluation sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// The RouteNet input.
    pub scenario: Scenario,
    /// Ground truth per pair, in canonical pair order (same length as
    /// `scenario.n_pairs()`).
    pub targets: Vec<TargetKpi>,
    /// Name of the topology family ("NSFNET", "Geant2", "Synth-50", ...).
    pub topology: String,
    /// The max-link-utilization intensity this sample was generated at.
    pub intensity: f64,
    /// Seed used for generation (provenance / dedup).
    pub seed: u64,
}

impl Sample {
    /// Restore internal indices after deserialization.
    pub fn finalize(&mut self) {
        self.scenario.finalize();
    }

    /// Validate structural consistency.
    #[must_use = "an unchecked validation result defeats the purpose of validating"]
    pub fn validate(&self) -> Result<(), String> {
        self.scenario.validate()?;
        if self.targets.len() != self.scenario.n_pairs() {
            return Err(format!(
                "{} targets for {} pairs",
                self.targets.len(),
                self.scenario.n_pairs()
            ));
        }
        for (i, t) in self.targets.iter().enumerate() {
            if !(t.delay_s.is_finite() && t.delay_s >= 0.0) {
                return Err(format!("target {i} has bad delay {}", t.delay_s));
            }
            if !(t.jitter_s2.is_finite() && t.jitter_s2 >= 0.0) {
                return Err(format!("target {i} has bad jitter {}", t.jitter_s2));
            }
            if !(t.drop_prob.is_finite() && (0.0..=1.0).contains(&t.drop_prob)) {
                return Err(format!("target {i} has bad drop prob {}", t.drop_prob));
            }
        }
        Ok(())
    }
}

/// A per-pair KPI prediction (shared output type of every predictor:
/// RouteNet, the M/M/1 baseline and the FNN baseline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted mean delay, seconds.
    /// unit: s
    pub delay_s: f64,
    /// Predicted jitter (delay variance), s². `NaN` when the predictor has
    /// no jitter head.
    /// unit: s^2
    pub jitter_s2: f64,
    /// Predicted drop probability. `NaN` when the predictor has no drop
    /// head.
    /// unit: ratio
    pub drop_prob: f64,
}

/// Anything that maps a scenario to per-pair KPI predictions in canonical
/// pair order.
pub trait KpiPredictor {
    /// Short human-readable name for tables ("RouteNet", "M/M/1", "FNN").
    fn predictor_name(&self) -> &str;

    /// Predict KPIs for every ordered pair of `scenario`.
    fn predict(&self, scenario: &Scenario) -> Vec<Prediction>;

    /// Predict over a whole sweep of scenarios, one prediction vector per
    /// scenario in input order. The default maps [`KpiPredictor::predict`];
    /// predictors with per-sweep setup cost (compiled indices, allocation
    /// arenas) override it to amortize that cost across the sweep.
    fn predict_batch(&self, scenarios: &[&Scenario]) -> Vec<Vec<Prediction>> {
        scenarios.iter().map(|s| self.predict(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_netgraph::topology::nsfnet;

    fn scenario() -> Scenario {
        let g = nsfnet();
        let routing = shortest_path_routing(&g).unwrap();
        let mut traffic = TrafficMatrix::zeros(g.n_nodes());
        traffic.set_demand(NodeId(0), NodeId(5), 1_000.0);
        Scenario {
            graph: g,
            routing,
            traffic,
        }
    }

    #[test]
    fn scenario_validates() {
        let s = scenario();
        s.validate().unwrap();
        assert_eq!(s.n_pairs(), 14 * 13);
        assert_eq!(s.pairs().len(), 14 * 13);
    }

    #[test]
    fn scenario_detects_mismatched_traffic() {
        let mut s = scenario();
        s.traffic = TrafficMatrix::zeros(5);
        assert!(s.validate().is_err());
    }

    #[test]
    fn sample_validates_targets() {
        let sc = scenario();
        let n = sc.n_pairs();
        let mut sample = Sample {
            scenario: sc,
            targets: vec![
                TargetKpi {
                    delay_s: 0.1,
                    jitter_s2: 0.01,
                    drop_prob: 0.0
                };
                n
            ],
            topology: "NSFNET".into(),
            intensity: 0.5,
            seed: 1,
        };
        sample.validate().unwrap();
        sample.targets.pop();
        assert!(sample.validate().is_err());
    }

    #[test]
    fn sample_rejects_bad_kpis() {
        let sc = scenario();
        let n = sc.n_pairs();
        let mut sample = Sample {
            scenario: sc,
            targets: vec![
                TargetKpi {
                    delay_s: 0.1,
                    jitter_s2: 0.01,
                    drop_prob: 0.0
                };
                n
            ],
            topology: "NSFNET".into(),
            intensity: 0.5,
            seed: 1,
        };
        sample.targets[3].delay_s = f64::NAN;
        assert!(sample.validate().is_err());
        sample.targets[3].delay_s = 0.1;
        sample.targets[7].jitter_s2 = -1.0;
        assert!(sample.validate().is_err());
    }

    #[test]
    fn sample_serde_roundtrip() {
        let sc = scenario();
        let n = sc.n_pairs();
        let sample = Sample {
            scenario: sc,
            targets: vec![
                TargetKpi {
                    delay_s: 0.2,
                    jitter_s2: 0.02,
                    drop_prob: 0.0
                };
                n
            ],
            topology: "NSFNET".into(),
            intensity: 0.4,
            seed: 9,
        };
        let json = serde_json::to_string(&sample).unwrap();
        let mut back: Sample = serde_json::from_str(&json).unwrap();
        back.finalize();
        back.validate().unwrap();
        assert_eq!(back.topology, "NSFNET");
        assert_eq!(back.targets.len(), n);
        assert_eq!(back.scenario.graph.n_links(), 42);
    }
}
