//! The RouteNet graph neural network (Rusek et al., SOSR 2019), the model
//! whose generalization the paper challenges.
//!
//! Architecture (T message-passing iterations):
//!
//! ```text
//! h_l^0 = [link features, 0...]        h_p^0 = [path features, 0...]
//! repeat T times:
//!   for every path p  (batched by hop position):
//!       h_p ← GRU_path(x = h_l, h = h_p) along the links l ∈ p in order;
//!       every intermediate state is a message m_{p,l}
//!   for every link l:
//!       h_l ← GRU_link(x = Σ_{p : l ∈ p} m_{p,l}, h = h_l)
//! readout:  [delay, jitter] = MLP(h_p)
//! ```
//!
//! The per-position batching (gather active paths' link states → one GRU
//! step over the whole batch → scatter messages into link inboxes) makes the
//! tape length `O(T · max_path_len)` rather than `O(T · Σ|p|)`.

use crate::batch::BatchedScenario;
use crate::features::Normalizer;
use crate::indexing::PathTensors;
use crate::sample::{KpiPredictor, Prediction, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;
use routenet_netgraph::RoutingScheme;
use routenet_nn::prelude::*;
use serde::{Deserialize, Serialize};

/// Hyperparameters of the RouteNet model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteNetConfig {
    /// Width of per-link hidden states.
    pub link_state_dim: usize,
    /// Width of per-path hidden states.
    pub path_state_dim: usize,
    /// Hidden width of the readout MLP.
    pub readout_hidden: usize,
    /// Number of message-passing iterations T.
    pub t_iterations: usize,
    /// Whether the readout has a second (jitter) head.
    pub predict_jitter: bool,
    /// Whether the readout has a drop-probability head (finite-buffer
    /// extension; train on datasets generated with `buffer_pkts`).
    pub predict_drops: bool,
    /// Weight initialization seed.
    pub seed: u64,
}

impl Default for RouteNetConfig {
    fn default() -> Self {
        // The paper reports tuning hyperparameters for larger topologies but
        // not the values; these defaults train in minutes on CPU while
        // keeping the architecture intact. The ablation bench sweeps them.
        RouteNetConfig {
            link_state_dim: 16,
            path_state_dim: 16,
            readout_hidden: 32,
            t_iterations: 4,
            predict_jitter: true,
            predict_drops: false,
            seed: 2019,
        }
    }
}

/// A scenario pre-compiled for the forward pass: message-passing index plus
/// initial feature tensors and per-position keep masks.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// Gather/scatter index.
    pub tensors: PathTensors,
    pub(crate) link_x: Tensor,
    pub(crate) path_x: Tensor,
    /// `keep_masks[k]`: `n_paths x path_dim` 0/1 tensor, 0 where the path is
    /// active at position k (its row is replaced by the GRU output).
    pub(crate) keep_masks: Vec<Tensor>,
}

/// The RouteNet GNN with its parameters and fitted normalizer.
#[derive(Debug)]
pub struct RouteNet {
    config: RouteNetConfig,
    store: ParamStore,
    path_cell: GruCell,
    link_cell: GruCell,
    readout: Mlp,
    norm: Normalizer,
}

/// Serializable checkpoint of a trained model.
#[derive(Serialize, Deserialize)]
struct Checkpoint {
    config: RouteNetConfig,
    store: ParamStore,
    path_cell: GruCell,
    link_cell: GruCell,
    readout: Mlp,
    norm: Normalizer,
}

impl RouteNet {
    /// Fresh model with Xavier-initialized weights.
    pub fn new(config: RouteNetConfig) -> Self {
        assert!(config.link_state_dim >= 2, "link state must fit 2 features");
        assert!(config.path_state_dim >= 1, "path state must fit 1 feature");
        assert!(config.t_iterations >= 1, "need at least one iteration");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let path_cell = GruCell::new(
            &mut store,
            "path_gru",
            config.link_state_dim,
            config.path_state_dim,
            &mut rng,
        );
        let link_cell = GruCell::new(
            &mut store,
            "link_gru",
            config.path_state_dim,
            config.link_state_dim,
            &mut rng,
        );
        let out_dim = 1 + config.predict_jitter as usize + config.predict_drops as usize;
        let readout = Mlp::new(
            &mut store,
            "readout",
            &[
                config.path_state_dim,
                config.readout_hidden,
                config.readout_hidden,
                out_dim,
            ],
            Activation::Relu,
            Activation::Linear,
            &mut rng,
        );
        RouteNet {
            config,
            store,
            path_cell,
            link_cell,
            readout,
            norm: Normalizer::default(),
        }
    }

    /// Rebuild a model from checkpointed parts: architecture config, a
    /// parameter store, and a fitted normalizer (e.g. from a
    /// [`crate::checkpoint::TrainState`]). The store must structurally
    /// match what [`RouteNet::new`] registers for `config` — same tensor
    /// count, names, and shapes — otherwise an error describes the first
    /// mismatch.
    #[must_use = "the rebuilt model is the entire point; an unchecked error here means a silently missing model"]
    pub fn from_parts(
        config: RouteNetConfig,
        params: ParamStore,
        norm: Normalizer,
    ) -> Result<Self, String> {
        let mut model = RouteNet::new(config);
        if model.store.len() != params.len() {
            return Err(format!(
                "parameter store has {} tensors, architecture needs {}",
                params.len(),
                model.store.len()
            ));
        }
        for id in model.store.ids() {
            if model.store.name(id) != params.name(id) {
                return Err(format!(
                    "parameter named {:?} where architecture expects {:?}",
                    params.name(id),
                    model.store.name(id)
                ));
            }
            if model.store.get(id).shape() != params.get(id).shape() {
                return Err(format!(
                    "parameter {:?} has shape {:?}, architecture expects {:?}",
                    params.name(id),
                    params.get(id).shape(),
                    model.store.get(id).shape()
                ));
            }
        }
        model.store = params;
        model.norm = norm;
        Ok(model)
    }

    /// Model hyperparameters.
    pub fn config(&self) -> &RouteNetConfig {
        &self.config
    }

    /// The parameter store (read access, e.g. for counting weights).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store (used by the trainer's optimizer).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Number of trainable scalars.
    pub fn n_parameters(&self) -> usize {
        self.store.n_scalars()
    }

    /// The fitted normalizer.
    pub fn normalizer(&self) -> &Normalizer {
        &self.norm
    }

    /// Install a normalizer (fitted on the training set).
    pub fn set_normalizer(&mut self, norm: Normalizer) {
        self.norm = norm;
    }

    /// Number of readout outputs (1..=3: delay [, jitter] [, drop]).
    pub fn out_dim(&self) -> usize {
        1 + self.config.predict_jitter as usize + self.config.predict_drops as usize
    }

    /// Column index of the jitter output, if enabled.
    pub fn jitter_col(&self) -> Option<usize> {
        self.config.predict_jitter.then_some(1)
    }

    /// Column index of the drop output, if enabled.
    pub fn drop_col(&self) -> Option<usize> {
        self.config
            .predict_drops
            .then(|| 1 + self.config.predict_jitter as usize)
    }

    /// Pre-compile a scenario: build the message-passing index, initial
    /// feature tensors, and position masks. Reused across epochs.
    pub fn compile(&self, scenario: &Scenario) -> CompiledScenario {
        self.compile_with_index(scenario, PathTensors::build(scenario))
    }

    /// [`RouteNet::compile`] with a pre-built message-passing index. The
    /// index depends only on the routing, so eval sweeps over many traffic
    /// matrices on one topology build it once and clone it per sample —
    /// the structural walk over every path is the expensive half of
    /// compilation; the feature tensors are per-sample by necessity.
    pub fn compile_with_index(
        &self,
        scenario: &Scenario,
        tensors: PathTensors,
    ) -> CompiledScenario {
        let lf = self.norm.link_features(scenario);
        let pf = self.norm.path_features(scenario);
        // Embed features into the first columns of the initial states.
        let link_x = Tensor::from_fn(tensors.n_links, self.config.link_state_dim, |r, c| {
            if c < 2 {
                lf.get(r, c)
            } else {
                0.0
            }
        });
        let path_x = Tensor::from_fn(tensors.n_paths, self.config.path_state_dim, |r, c| {
            if c == 0 {
                pf.get(r, 0)
            } else {
                0.0
            }
        });
        let keep_masks = (0..tensors.max_len)
            .map(|k| {
                let active = tensors.active_mask(k);
                Tensor::from_fn(tensors.n_paths, self.config.path_state_dim, |r, _| {
                    // lint: allow(panic, reason = "active_mask returns one flag per path row, r < n_paths")
                    if active[r] {
                        0.0
                    } else {
                        1.0
                    }
                })
            })
            .collect();
        CompiledScenario {
            tensors,
            link_x,
            path_x,
            keep_masks,
        }
    }

    /// Build the forward graph for a compiled scenario on `sess`'s tape.
    /// Returns the `n_paths x out_dim` normalized prediction variable.
    pub fn forward(&self, sess: &mut Session, compiled: &CompiledScenario) -> Var {
        let idx = &compiled.tensors;
        // Copy-in leaves keep the tape's buffer pool balanced when the
        // session is arena-reused across passes (same values either way).
        let mut link_state = sess.input_copied(&compiled.link_x);
        let mut path_state = sess.input_copied(&compiled.path_x);

        for _ in 0..self.config.t_iterations {
            // Path update: walk hop positions, batching all active paths.
            // Accumulate messages into per-link inboxes as we go.
            let mut link_inbox: Option<Var> = None;
            for k in 0..idx.max_len {
                let pos = &idx.positions[k]; // lint: allow(panic, reason = "positions holds max_len entries, k < max_len")
                let x = sess.tape.gather_rows(link_state, pos.link_idx.clone());
                let h = sess.tape.gather_rows(path_state, pos.path_idx.clone());
                let h_new = self.path_cell.step(sess, x, h);
                // Replace the active rows of the path state.
                // lint: allow(panic, reason = "keep_masks is built with max_len entries in compile, k < max_len")
                let kept = sess.tape.mul_const(path_state, &compiled.keep_masks[k]);
                let scattered =
                    sess.tape
                        .scatter_add_rows(h_new, pos.path_idx.clone(), idx.n_paths);
                path_state = sess.tape.add(kept, scattered);
                // The per-position GRU outputs are the messages m_{p,l}.
                let msg = sess
                    .tape
                    .scatter_add_rows(h_new, pos.link_idx.clone(), idx.n_links);
                link_inbox = Some(match link_inbox {
                    Some(acc) => sess.tape.add(acc, msg),
                    None => msg,
                });
            }
            // Link update from aggregated messages.
            if let Some(inbox) = link_inbox {
                link_state = self.link_cell.step(sess, inbox, link_state);
            }
        }
        self.readout.forward(sess, path_state)
    }

    /// Build the forward graph for a packed minibatch on `sess`'s tape.
    /// Returns the `total_paths x out_dim` normalized prediction variable,
    /// sample row blocks in pack order.
    ///
    /// This replays exactly the op sequence of [`RouteNet::forward`] over
    /// the concatenated rows; every op whose reduction crosses sample
    /// boundaries while touching a parameter uses its segment-aware variant,
    /// which iterates segments in sample order. Per-sample output rows and
    /// the per-segment parameter gradients recovered via
    /// [`Session::param_grads_seg`] are therefore bitwise identical to
    /// running each sample through [`RouteNet::forward`] on its own tape.
    pub fn forward_batch(&self, sess: &mut Session, batch: &BatchedScenario) -> Var {
        let mut link_state = sess.input_copied(batch.link_x());
        let mut path_state = sess.input_copied(batch.path_x());

        for _ in 0..self.config.t_iterations {
            let mut link_inbox: Option<Var> = None;
            for k in 0..batch.max_len {
                let pos = batch.position(k);
                let x = sess.tape.gather_rows_plan(link_state, &pos.link_idx);
                let h = sess.tape.gather_rows_plan(path_state, &pos.path_idx);
                let h_new = self.path_cell.step_seg(sess, x, h, &pos.seg);
                let kept = sess.tape.mul_const_shared(path_state, batch.keep_mask(k));
                let scattered =
                    sess.tape
                        .scatter_add_rows_plan(h_new, &pos.path_idx, batch.n_paths);
                path_state = sess.tape.add(kept, scattered);
                let msg = sess
                    .tape
                    .scatter_add_rows_plan(h_new, &pos.link_idx, batch.n_links);
                link_inbox = Some(match link_inbox {
                    Some(acc) => sess.tape.add(acc, msg),
                    None => msg,
                });
            }
            if let Some(inbox) = link_inbox {
                link_state = self
                    .link_cell
                    .step_seg(sess, inbox, link_state, batch.link_seg());
            }
        }
        self.readout.forward_seg(sess, path_state, batch.path_seg())
    }

    /// Predict denormalized KPIs for a raw scenario.
    pub fn predict_scenario(&self, scenario: &Scenario) -> Vec<Prediction> {
        let compiled = self.compile(scenario);
        self.predict_compiled(&compiled)
    }

    /// Predict denormalized KPIs for a pre-compiled scenario.
    pub fn predict_compiled(&self, compiled: &CompiledScenario) -> Vec<Prediction> {
        self.predict_compiled_reuse(compiled, Tape::new()).0
    }

    /// [`RouteNet::predict_compiled`] threading an arena-backed tape through
    /// the call: the tape is reset (recycling its value buffers) before the
    /// forward pass and returned afterwards, so an eval sweep reuses one
    /// allocation arena instead of building a fresh tape per sample.
    pub fn predict_compiled_reuse(
        &self,
        compiled: &CompiledScenario,
        arena: Tape,
    ) -> (Vec<Prediction>, Tape) {
        let mut sess = Session::with_tape(&self.store, arena);
        let out = self.forward(&mut sess, compiled);
        let preds = self.extract_predictions(sess.tape.value(out));
        (preds, sess.into_tape())
    }

    /// Predict denormalized KPIs for many pre-compiled scenarios in ONE
    /// batched forward pass ([`RouteNet::forward_batch`]). Accepts
    /// heterogeneous plans — different topologies, path counts, and hop
    /// depths pack fine — and returns one prediction vector per input, in
    /// input order. By the batched-equivalence contract (see DESIGN.md
    /// "Batched execution & memory arenas"), each sample's predictions are
    /// bitwise identical to [`RouteNet::predict_compiled`] on that sample
    /// alone, for any batch composition — the property that lets a serving
    /// daemon micro-batch concurrent queries without perturbing answers.
    pub fn predict_batch_compiled(&self, compiled: &[&CompiledScenario]) -> Vec<Vec<Prediction>> {
        self.predict_batch_compiled_reuse(compiled, Tape::new()).0
    }

    /// [`RouteNet::predict_batch_compiled`] threading an arena-backed tape
    /// through the call, mirroring [`RouteNet::predict_compiled_reuse`]: a
    /// long-lived caller (the serving daemon's batch loop) reuses one
    /// allocation arena across micro-batches instead of building a fresh
    /// tape per batch. An empty slice is a no-op returning the arena.
    pub fn predict_batch_compiled_reuse(
        &self,
        compiled: &[&CompiledScenario],
        arena: Tape,
    ) -> (Vec<Vec<Prediction>>, Tape) {
        if compiled.is_empty() {
            return (Vec::new(), arena);
        }
        let batch = BatchedScenario::pack(compiled);
        let mut sess = Session::with_tape(&self.store, arena);
        let out = self.forward_batch(&mut sess, &batch);
        let all = self.extract_predictions(sess.tape.value(out));
        let preds = (0..batch.n_samples())
            .map(|s| {
                let (lo, hi) = batch.sample_path_range(s);
                debug_assert!(hi <= all.len(), "sample ranges partition the output rows");
                // lint: allow(panic, reason = "sample_path_range partitions 0..n_paths and extract_predictions yields one row per path")
                all[lo..hi].to_vec()
            })
            .collect();
        (preds, sess.into_tape())
    }

    /// Denormalize a `rows x out_dim` prediction tensor into KPI structs.
    fn extract_predictions(&self, v: &Tensor) -> Vec<Prediction> {
        (0..v.rows())
            .map(|r| {
                let dz = v.get(r, 0);
                let jz = self.jitter_col().map_or(0.0, |c| v.get(r, c));
                let t = self.norm.denormalize(dz, jz);
                Prediction {
                    delay_s: t.delay_s,
                    jitter_s2: if self.config.predict_jitter {
                        t.jitter_s2
                    } else {
                        f64::NAN
                    },
                    // The drop head regresses the raw probability; clamp to
                    // the valid range.
                    drop_prob: self
                        .drop_col()
                        .map_or(f64::NAN, |c| v.get(r, c).clamp(0.0, 1.0)),
                }
            })
            .collect()
    }

    /// Serialize the full model (config + weights + normalizer) to JSON.
    pub fn to_json(&self) -> String {
        let ckpt = Checkpoint {
            config: self.config.clone(),
            store: self.store.clone(),
            path_cell: self.path_cell.clone(),
            link_cell: self.link_cell.clone(),
            readout: self.readout.clone(),
            norm: self.norm.clone(),
        };
        // lint: allow(panic, reason = "in-memory numeric data always serializes; f64 is emitted as a literal")
        serde_json::to_string(&ckpt).expect("checkpoint serializes")
    }

    /// Restore a model saved with [`RouteNet::to_json`].
    #[must_use = "dropping the result loses both the restored model and any parse error"]
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let ckpt: Checkpoint = serde_json::from_str(s)?;
        Ok(RouteNet {
            config: ckpt.config,
            store: ckpt.store,
            path_cell: ckpt.path_cell,
            link_cell: ckpt.link_cell,
            readout: ckpt.readout,
            norm: ckpt.norm,
        })
    }
}

impl KpiPredictor for RouteNet {
    fn predictor_name(&self) -> &str {
        "RouteNet"
    }

    fn predict(&self, scenario: &Scenario) -> Vec<Prediction> {
        self.predict_scenario(scenario)
    }

    /// Sweep-aware override: one arena-backed tape is threaded through the
    /// whole sweep (zero steady-state tape allocation), and the structural
    /// message-passing index is rebuilt only when the routing changes
    /// between consecutive scenarios — eval sets are usually many traffic
    /// matrices over a handful of topologies, so grouping by topology
    /// upstream turns recompilation into a per-group cost.
    fn predict_batch(&self, scenarios: &[&Scenario]) -> Vec<Vec<Prediction>> {
        let mut arena = Tape::new();
        let mut cached: Option<(&RoutingScheme, PathTensors)> = None;
        let mut out = Vec::with_capacity(scenarios.len());
        for sc in scenarios {
            let hit = matches!(&cached, Some((r, _)) if *r == &sc.routing);
            if !hit {
                cached = Some((&sc.routing, PathTensors::build(sc)));
            }
            // lint: allow(panic, reason = "cached is installed on miss just above")
            let index = &cached.as_ref().expect("index cached").1;
            let compiled = self.compile_with_index(sc, index.clone());
            let (preds, returned) = self.predict_compiled_reuse(&compiled, arena);
            arena = returned;
            out.push(preds);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_netgraph::topology::nsfnet;
    use routenet_netgraph::{NodeId, TrafficMatrix};

    fn tiny_config() -> RouteNetConfig {
        RouteNetConfig {
            link_state_dim: 4,
            path_state_dim: 4,
            readout_hidden: 8,
            t_iterations: 2,
            predict_jitter: true,
            predict_drops: false,
            seed: 1,
        }
    }

    /// Model with a normalizer matching the test scenarios' scales.
    ///
    /// Raw capacities (1e4 bps) fed straight into GRU gates saturate the
    /// sigmoids and zero the gradients, which is exactly why training always
    /// fits a normalizer first; tests must do the same.
    fn tiny_model(cfg: RouteNetConfig) -> RouteNet {
        let mut model = RouteNet::new(cfg);
        model.set_normalizer(crate::features::Normalizer {
            capacity_scale: 10_000.0,
            traffic_scale: 230.0,
            ..crate::features::Normalizer::default()
        });
        model
    }

    fn scenario() -> Scenario {
        let g = nsfnet();
        let routing = shortest_path_routing(&g).unwrap();
        let mut traffic = TrafficMatrix::zeros(g.n_nodes());
        for (s, d) in g.node_pairs() {
            traffic.set_demand(s, d, 100.0 + 10.0 * (s.0 + d.0) as f64);
        }
        Scenario {
            graph: g,
            routing,
            traffic,
        }
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let model = tiny_model(tiny_config());
        let sc = scenario();
        let compiled = model.compile(&sc);
        let mut sess = Session::new(model.store());
        let out = model.forward(&mut sess, &compiled);
        let v = sess.tape.value(out);
        assert_eq!(v.shape(), (14 * 13, 2));
        assert!(v.all_finite());
    }

    #[test]
    fn predictions_cover_all_pairs() {
        let model = tiny_model(tiny_config());
        let sc = scenario();
        let preds = model.predict_scenario(&sc);
        assert_eq!(preds.len(), 14 * 13);
        assert!(preds.iter().all(|p| p.delay_s.is_finite()));
    }

    #[test]
    fn delay_only_head() {
        let cfg = RouteNetConfig {
            predict_jitter: false,
            ..tiny_config()
        };
        let model = tiny_model(cfg);
        assert_eq!(model.out_dim(), 1);
        let preds = model.predict_scenario(&scenario());
        assert!(preds.iter().all(|p| p.jitter_s2.is_nan()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tiny_model(tiny_config());
        let b = tiny_model(tiny_config());
        let sc = scenario();
        let pa = a.predict_scenario(&sc);
        let pb = b.predict_scenario(&sc);
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x.delay_s, y.delay_s);
        }
        let c = tiny_model(RouteNetConfig {
            seed: 99,
            ..tiny_config()
        });
        let pc = c.predict_scenario(&sc);
        assert!(pa.iter().zip(&pc).any(|(x, y)| x.delay_s != y.delay_s));
    }

    #[test]
    fn output_depends_on_traffic() {
        let model = tiny_model(tiny_config());
        let sc1 = scenario();
        let mut sc2 = scenario();
        // Crank one demand way up.
        sc2.traffic.set_demand(NodeId(0), NodeId(5), 50_000.0);
        let p1 = model.predict_scenario(&sc1);
        let p2 = model.predict_scenario(&sc2);
        assert!(p1.iter().zip(&p2).any(|(a, b)| a.delay_s != b.delay_s));
    }

    #[test]
    fn output_depends_on_routing_structure() {
        // Same traffic, different routing => different predictions.
        let model = tiny_model(tiny_config());
        let sc1 = scenario();
        let mut sc2 = scenario();
        let mut rng = StdRng::seed_from_u64(4);
        sc2.routing =
            routenet_netgraph::routing::randomized_routing(&sc2.graph, 3.0, &mut rng).unwrap();
        let p1 = model.predict_scenario(&sc1);
        let p2 = model.predict_scenario(&sc2);
        assert!(p1.iter().zip(&p2).any(|(a, b)| a.delay_s != b.delay_s));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let model = tiny_model(tiny_config());
        let sc = scenario();
        let compiled = model.compile(&sc);
        let mut sess = Session::new(model.store());
        let out = model.forward(&mut sess, &compiled);
        let target = Tensor::zeros(14 * 13, 2);
        let loss = sess.tape.mse(out, &target);
        let grads = sess.tape.backward(loss);
        let pg = sess.param_grads(&grads);
        // 9 (path gru) + 9 (link gru) + 6 (3-layer readout) = 24 tensors
        assert_eq!(pg.len(), model.store().len());
        for (id, g) in &pg {
            assert!(
                g.norm() > 0.0,
                "parameter {} received zero gradient",
                model.store().name(*id)
            );
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let model = tiny_model(tiny_config());
        let sc = scenario();
        let before = model.predict_scenario(&sc);
        let json = model.to_json();
        let restored = RouteNet::from_json(&json).unwrap();
        let after = restored.predict_scenario(&sc);
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.delay_s, b.delay_s);
            assert_eq!(a.jitter_s2, b.jitter_s2);
        }
        assert_eq!(restored.config(), model.config());
    }

    #[test]
    fn works_on_variable_topology_sizes() {
        // The generalization property: one model, graphs of different size.
        let model = tiny_model(tiny_config());
        let mut rng = StdRng::seed_from_u64(8);
        for n in [5usize, 10, 24] {
            let g = routenet_netgraph::generate::synthetic(n, &mut rng);
            let routing = shortest_path_routing(&g).unwrap();
            let mut traffic = TrafficMatrix::zeros(n);
            for (s, d) in g.node_pairs() {
                traffic.set_demand(s, d, 500.0);
            }
            let sc = Scenario {
                graph: g,
                routing,
                traffic,
            };
            let preds = model.predict_scenario(&sc);
            assert_eq!(preds.len(), n * (n - 1));
            assert!(preds.iter().all(|p| p.delay_s.is_finite()));
        }
    }

    #[test]
    fn n_parameters_scales_with_dims() {
        let small = tiny_model(tiny_config());
        let big = RouteNet::new(RouteNetConfig::default());
        assert!(big.n_parameters() > small.n_parameters());
        assert!(small.n_parameters() > 100);
    }
}
