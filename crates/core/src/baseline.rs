//! Baseline predictors the paper's introduction argues against.
//!
//! - [`Mm1Baseline`]: the analytic queuing-theory model ("Analytic models
//!   (e.g., Queuing Theory) fail to achieve accurate estimation in
//!   real-world scenarios", §1).
//! - [`FnnBaseline`]: a fixed-input fully-connected network, representative
//!   of the pre-GNN proposals ([2, 4, 6, 7] in the paper) whose architecture
//!   "is not well suited to model information structured as graphs" — and
//!   which cannot be applied to a topology with a different size at all.

use crate::features::Normalizer;
use crate::sample::{KpiPredictor, Prediction, Sample, Scenario};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use routenet_nn::prelude::*;
use serde::{Deserialize, Serialize};

/// Queuing-theory baseline: per-link M/M/1 with the Kleinrock independence
/// approximation (see `routenet_simnet::queueing`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mm1Baseline {
    /// Mean packet size used to convert bit rates to packet rates; must
    /// match the simulator setting for a fair comparison.
    pub mean_pkt_size_bits: f64,
    /// Finite stand-in for the infinite delay of an unstable queue, so the
    /// predictor's output is always usable in metrics.
    pub unstable_delay_s: f64,
}

impl Default for Mm1Baseline {
    fn default() -> Self {
        Mm1Baseline {
            mean_pkt_size_bits: 1_000.0,
            unstable_delay_s: 1e6,
        }
    }
}

impl KpiPredictor for Mm1Baseline {
    fn predictor_name(&self) -> &str {
        "M/M/1"
    }

    fn predict(&self, scenario: &Scenario) -> Vec<Prediction> {
        let net = routenet_simnet::queueing::Mm1Network::build(
            &scenario.graph,
            &scenario.routing,
            &scenario.traffic,
            self.mean_pkt_size_bits,
        );
        net.predict_all(&scenario.routing)
            .into_iter()
            .map(|p| Prediction {
                delay_s: if p.mean_delay_s.is_finite() {
                    p.mean_delay_s
                } else {
                    self.unstable_delay_s
                },
                jitter_s2: if p.jitter_s2.is_finite() {
                    p.jitter_s2
                } else {
                    self.unstable_delay_s
                },
                drop_prob: f64::NAN,
            })
            .collect()
    }
}

/// M/G/1 (Pollaczek–Khinchine) baseline: like [`Mm1Baseline`] but fed the
/// *true* packet-size distribution, making it the strongest analytic model
/// available. It still assumes link independence, so multi-hop paths keep a
/// tandem-correlation bias that only a learned model can remove. Including
/// it keeps the comparison honest: RouteNet must beat not just a
/// wrong-distribution analytic model, but the best-informed one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mg1Baseline {
    /// Mean packet size used to convert bit rates to packet rates.
    pub mean_pkt_size_bits: f64,
    /// The packet-size distribution the simulator used for labels.
    pub size_dist: routenet_simnet::sim::SizeDistribution,
    /// Finite stand-in for the infinite delay of an unstable queue.
    pub unstable_delay_s: f64,
}

impl Default for Mg1Baseline {
    fn default() -> Self {
        Mg1Baseline {
            mean_pkt_size_bits: 1_000.0,
            // The dataset generator's default labels use deterministic sizes.
            size_dist: routenet_simnet::sim::SizeDistribution::Deterministic,
            unstable_delay_s: 1e6,
        }
    }
}

impl KpiPredictor for Mg1Baseline {
    fn predictor_name(&self) -> &str {
        "M/G/1"
    }

    fn predict(&self, scenario: &Scenario) -> Vec<Prediction> {
        let net = routenet_simnet::queueing::Mg1Network::build(
            &scenario.graph,
            &scenario.routing,
            &scenario.traffic,
            self.mean_pkt_size_bits,
            &self.size_dist,
        );
        net.predict_all(&scenario.routing)
            .into_iter()
            .map(|p| Prediction {
                delay_s: if p.mean_delay_s.is_finite() {
                    p.mean_delay_s
                } else {
                    self.unstable_delay_s
                },
                jitter_s2: if p.jitter_s2.is_finite() {
                    p.jitter_s2
                } else {
                    self.unstable_delay_s
                },
                drop_prob: f64::NAN,
            })
            .collect()
    }
}

/// M/M/1/K baseline for finite-buffer scenarios: per-link blocking with the
/// independence approximation; predicts both delivered-packet delay and the
/// path drop probability. `buffer_pkts` must match the simulator setting
/// used to generate the labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mm1kBaseline {
    /// Mean packet size used to convert bit rates to packet rates.
    pub mean_pkt_size_bits: f64,
    /// Per-link system capacity in packets (including in service).
    pub buffer_pkts: usize,
}

impl Default for Mm1kBaseline {
    fn default() -> Self {
        Mm1kBaseline {
            mean_pkt_size_bits: 1_000.0,
            buffer_pkts: 10,
        }
    }
}

impl KpiPredictor for Mm1kBaseline {
    fn predictor_name(&self) -> &str {
        "M/M/1/K"
    }

    fn predict(&self, scenario: &Scenario) -> Vec<Prediction> {
        let net = routenet_simnet::queueing::Mm1kNetwork::build(
            &scenario.graph,
            &scenario.routing,
            &scenario.traffic,
            self.mean_pkt_size_bits,
            self.buffer_pkts,
        );
        net.predict_all(&scenario.routing)
            .into_iter()
            // lint: allow(nan-sink, reason = "NaN is the deliberate 'KPI not predicted' sentinel; eval masks NaN columns")
            .map(|(delay, drop)| Prediction {
                delay_s: delay,
                jitter_s2: f64::NAN,
                drop_prob: drop,
            })
            .collect()
    }
}

/// Hyperparameters of the fully-connected baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FnnConfig {
    /// Widths of the hidden layers.
    pub hidden: Vec<usize>,
    /// Training epochs (full-batch Adam).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Minibatch size in samples.
    pub batch_size: usize,
    /// Weight-init and shuffle seed.
    pub seed: u64,
}

impl Default for FnnConfig {
    fn default() -> Self {
        FnnConfig {
            hidden: vec![128, 128],
            epochs: 200,
            lr: 1e-3,
            batch_size: 16,
            seed: 17,
        }
    }
}

/// Fully-connected delay predictor with a fixed-size input: the flattened
/// traffic matrix of ONE topology+routing. It has no notion of graph
/// structure, so it can only be trained and applied per fixed scenario
/// shape — the contrast the paper draws with RouteNet's generalization.
#[derive(Debug)]
pub struct FnnBaseline {
    store: ParamStore,
    mlp: Mlp,
    n_pairs: usize,
    norm: Normalizer,
}

impl FnnBaseline {
    /// Number of pairs this network was built for.
    pub fn n_pairs(&self) -> usize {
        self.n_pairs
    }

    /// True if the baseline can be applied to `scenario` (same pair count —
    /// in practice: the same fixed topology it was trained on).
    pub fn supports(&self, scenario: &Scenario) -> bool {
        scenario.n_pairs() == self.n_pairs
    }

    fn input_tensor(norm: &Normalizer, scenario: &Scenario) -> Tensor {
        debug_assert!(norm.traffic_scale > 0.0, "fit_with floors the scale");
        let demands: Vec<f64> = scenario
            .traffic
            .entries()
            .map(|(_, _, v)| v / norm.traffic_scale)
            .collect();
        Tensor::row_vector(demands)
    }

    /// Train on samples that all share one topology/routing shape.
    pub fn train(samples: &[Sample], cfg: &FnnConfig) -> Self {
        assert!(!samples.is_empty(), "FNN training set is empty");
        let n_pairs = samples[0].scenario.n_pairs();
        assert!(
            samples.iter().all(|s| s.scenario.n_pairs() == n_pairs),
            "FNN baseline requires a fixed topology"
        );
        let norm = Normalizer::fit(samples);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let mut dims = vec![n_pairs];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(n_pairs);
        let mlp = Mlp::new(
            &mut store,
            "fnn",
            &dims,
            Activation::Relu,
            Activation::Linear,
            &mut rng,
        );
        let mut opt = Adam::new(&store, cfg.lr);

        // Precompute inputs (1 x n_pairs) and z-scored delay targets.
        let inputs: Vec<Tensor> = samples
            .iter()
            .map(|s| Self::input_tensor(&norm, &s.scenario))
            .collect();
        debug_assert!(norm.delay_std > 0.0, "mean_std floors the std");
        let targets: Vec<Tensor> = samples
            .iter()
            .map(|s| {
                Tensor::row_vector(
                    s.targets
                        .iter()
                        .map(|t| (t.delay_s - norm.delay_mean) / norm.delay_std)
                        .collect(),
                )
            })
            .collect();

        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let mut acc = GradAccumulator::new(&store);
                for &i in chunk {
                    let mut sess = Session::new(&store);
                    let x = sess.input(inputs[i].clone());
                    let pred = mlp.forward(&mut sess, x);
                    let loss = sess.tape.mse(pred, &targets[i]);
                    let grads = sess.tape.backward(loss);
                    acc.add(&sess.param_grads(&grads));
                }
                let mut g = acc.take_mean();
                routenet_nn::optim::clip_global_norm(&mut g, 5.0);
                opt.step(&mut store, &g);
            }
        }
        FnnBaseline {
            store,
            mlp,
            n_pairs,
            norm,
        }
    }
}

impl KpiPredictor for FnnBaseline {
    fn predictor_name(&self) -> &str {
        "FNN"
    }

    /// Panics if the scenario does not match the trained topology shape —
    /// check [`FnnBaseline::supports`] first. (This inapplicability is
    /// itself one of the paper's observations about non-GNN models.)
    fn predict(&self, scenario: &Scenario) -> Vec<Prediction> {
        assert!(
            self.supports(scenario),
            "FNN baseline trained for {} pairs applied to {} pairs",
            self.n_pairs,
            scenario.n_pairs()
        );
        let mut sess = Session::new(&self.store);
        let x = sess.input(Self::input_tensor(&self.norm, scenario));
        let pred = self.mlp.forward(&mut sess, x);
        let v = sess.tape.value(pred);
        (0..self.n_pairs)
            // lint: allow(nan-sink, reason = "NaN is the deliberate 'KPI not predicted' sentinel; eval masks NaN columns")
            .map(|i| Prediction {
                delay_s: v.get(0, i) * self.norm.delay_std + self.norm.delay_mean,
                jitter_s2: f64::NAN,
                drop_prob: f64::NAN,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::TargetKpi;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_netgraph::{generate, NodeId, TrafficMatrix};
    use routenet_simnet::queueing::Mm1Network;

    fn mm1_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::ring(4);
        let routing = shortest_path_routing(&g).unwrap();
        (0..n)
            .map(|i| {
                let tm = routenet_netgraph::traffic::sample_traffic_matrix(
                    &g,
                    &routing,
                    &routenet_netgraph::TrafficModel::Uniform { min_frac: 0.3 },
                    0.2 + 0.5 * (i % 7) as f64 / 7.0,
                    &mut rng,
                );
                let net = Mm1Network::build(&g, &routing, &tm, 1_000.0);
                let targets = net
                    .predict_all(&routing)
                    .into_iter()
                    .map(|p| TargetKpi {
                        delay_s: p.mean_delay_s,
                        jitter_s2: p.jitter_s2,
                        drop_prob: 0.0,
                    })
                    .collect();
                Sample {
                    scenario: Scenario {
                        graph: g.clone(),
                        routing: routing.clone(),
                        traffic: tm,
                    },
                    targets,
                    topology: "Ring-4".into(),
                    intensity: 0.5,
                    seed: i as u64,
                }
            })
            .collect()
    }

    #[test]
    fn mm1_baseline_is_exact_on_mm1_labels() {
        let samples = mm1_samples(3, 5);
        let baseline = Mm1Baseline::default();
        for s in &samples {
            let preds = baseline.predict(&s.scenario);
            assert_eq!(preds.len(), s.targets.len());
            for (p, t) in preds.iter().zip(&s.targets) {
                assert!((p.delay_s - t.delay_s).abs() < 1e-12);
                assert!((p.jitter_s2 - t.jitter_s2).abs() < 1e-12);
            }
        }
        assert_eq!(baseline.predictor_name(), "M/M/1");
    }

    #[test]
    fn mm1_baseline_clamps_unstable() {
        let g = generate::ring(4);
        let routing = shortest_path_routing(&g).unwrap();
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(NodeId(0), NodeId(1), 1e9); // way over capacity
        let sc = Scenario {
            graph: g,
            routing,
            traffic: tm,
        };
        let preds = Mm1Baseline::default().predict(&sc);
        assert!(preds.iter().all(|p| p.delay_s.is_finite()));
        assert!(preds.iter().any(|p| p.delay_s == 1e6));
    }

    #[test]
    fn mg1_with_exponential_sizes_equals_mm1() {
        let samples = mm1_samples(2, 9);
        let mm1 = Mm1Baseline::default();
        let mg1 = Mg1Baseline {
            size_dist: routenet_simnet::sim::SizeDistribution::Exponential,
            ..Mg1Baseline::default()
        };
        for s in &samples {
            for (a, b) in mm1
                .predict(&s.scenario)
                .iter()
                .zip(mg1.predict(&s.scenario))
            {
                assert!((a.delay_s - b.delay_s).abs() < 1e-12);
                assert!((a.jitter_s2 - b.jitter_s2).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mg1_deterministic_predicts_less_delay_than_mm1() {
        let samples = mm1_samples(2, 10);
        let mm1 = Mm1Baseline::default();
        let md1 = Mg1Baseline::default(); // deterministic sizes
        for s in &samples {
            for (a, b) in mm1
                .predict(&s.scenario)
                .iter()
                .zip(md1.predict(&s.scenario))
            {
                assert!(
                    b.delay_s <= a.delay_s + 1e-12,
                    "M/D/1 {} > M/M/1 {}",
                    b.delay_s,
                    a.delay_s
                );
            }
        }
        assert_eq!(md1.predictor_name(), "M/G/1");
    }

    #[test]
    fn fnn_learns_fixed_topology() {
        let samples = mm1_samples(40, 6);
        let (tr, te) = samples.split_at(32);
        let cfg = FnnConfig {
            hidden: vec![32],
            epochs: 150,
            lr: 3e-3,
            batch_size: 8,
            seed: 2,
        };
        let fnn = FnnBaseline::train(tr, &cfg);
        assert_eq!(fnn.n_pairs(), 12);
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for s in te {
            assert!(fnn.supports(&s.scenario));
            for (p, t) in fnn.predict(&s.scenario).iter().zip(&s.targets) {
                preds.push(p.delay_s);
                truths.push(t.delay_s);
            }
        }
        let r = crate::metrics::pearson(&preds, &truths);
        assert!(r > 0.7, "FNN failed to fit its own topology: r = {r}");
    }

    #[test]
    fn fnn_rejects_other_topologies() {
        let samples = mm1_samples(4, 7);
        let fnn = FnnBaseline::train(
            &samples,
            &FnnConfig {
                epochs: 1,
                ..FnnConfig::default()
            },
        );
        // Build a 5-node scenario: different pair count.
        let g = generate::ring(5);
        let routing = shortest_path_routing(&g).unwrap();
        let traffic = TrafficMatrix::zeros(5);
        let sc = Scenario {
            graph: g,
            routing,
            traffic,
        };
        assert!(!fnn.supports(&sc));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fnn.predict(&sc)));
        assert!(
            result.is_err(),
            "predict on unsupported topology must panic"
        );
    }

    #[test]
    #[should_panic(expected = "fixed topology")]
    fn fnn_training_rejects_mixed_topologies() {
        let mut samples = mm1_samples(2, 8);
        let g = generate::ring(6);
        let routing = shortest_path_routing(&g).unwrap();
        let traffic = TrafficMatrix::zeros(6);
        samples.push(Sample {
            scenario: Scenario {
                graph: g,
                routing,
                traffic,
            },
            targets: vec![],
            topology: "Ring-6".into(),
            intensity: 0.1,
            seed: 0,
        });
        FnnBaseline::train(&samples, &FnnConfig::default());
    }
}
