//! Input feature extraction and target normalization.
//!
//! RouteNet's initial states embed raw network quantities (link capacity,
//! path traffic); stable training needs those and the regression targets on
//! a common scale. A [`Normalizer`] is fitted on the training set only and
//! then travels with the model checkpoint, exactly like the original
//! TensorFlow implementation's `transform` step.

use crate::sample::{Sample, Scenario, TargetKpi};
use routenet_nn::Tensor;
use serde::{Deserialize, Serialize};

/// Feature scales and target statistics fitted on a training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    /// Capacities are divided by this (max capacity seen in training).
    /// unit: bit/s
    pub capacity_scale: f64,
    /// Demands are divided by this (mean demand seen in training).
    /// unit: bit/s
    pub traffic_scale: f64,
    /// Propagation delays are divided by this (max seen, or 1 if all zero).
    /// unit: s
    pub prop_delay_scale: f64,
    /// Regress on `log(target)` instead of the raw target. Delays span
    /// orders of magnitude across load levels; log-space targets align the
    /// MSE training objective with the relative-error evaluation metric.
    pub log_targets: bool,
    /// Mean of (possibly log-) training delays.
    pub delay_mean: f64,
    /// Std of (possibly log-) training delays.
    pub delay_std: f64,
    /// Mean of (possibly log-) training jitters.
    pub jitter_mean: f64,
    /// Std of (possibly log-) training jitters.
    pub jitter_std: f64,
}

impl Default for Normalizer {
    fn default() -> Self {
        Normalizer {
            capacity_scale: 1.0,
            traffic_scale: 1.0,
            prop_delay_scale: 1.0,
            log_targets: false,
            delay_mean: 0.0,
            delay_std: 1.0,
            jitter_mean: 0.0,
            jitter_std: 1.0,
        }
    }
}

/// Floor applied before `log` to guard unobserved/zero targets.
const LOG_FLOOR: f64 = 1e-9;

fn mean_std(xs: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
    let n = (xs.clone().count().max(1)) as f64;
    debug_assert!(n > 0.0);
    let mean = xs.clone().sum::<f64>() / n;
    let var = xs.map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    // A sum of squares is mathematically nonnegative; clip the floating-point
    // residue before sqrt so the std can never go NaN.
    (mean, var.max(0.0).sqrt().max(1e-12))
}

impl Normalizer {
    /// Fit with raw targets (see [`Normalizer::fit_with`]).
    pub fn fit(samples: &[Sample]) -> Self {
        Self::fit_with(samples, false)
    }

    /// Fit scales on a training set. Panics on an empty slice.
    pub fn fit_with(samples: &[Sample], log_targets: bool) -> Self {
        assert!(!samples.is_empty(), "cannot fit a normalizer on no samples");
        let tf = |x: f64| {
            if log_targets {
                x.max(LOG_FLOOR).ln()
            } else {
                x
            }
        };
        let mut cap_max: f64 = 0.0;
        let mut pd_max: f64 = 0.0;
        for s in samples {
            for (_, l) in s.scenario.graph.links() {
                cap_max = cap_max.max(l.capacity_bps);
                pd_max = pd_max.max(l.prop_delay_s);
            }
        }
        let demands: Vec<f64> = samples
            .iter()
            .flat_map(|s| s.scenario.traffic.entries().map(|(_, _, v)| v))
            .filter(|v| *v > 0.0)
            .collect();
        let traffic_scale = if demands.is_empty() {
            1.0
        } else {
            demands.iter().sum::<f64>() / demands.len() as f64
        };
        // Zero-delay targets are "unobserved flow" sentinels; exclude them
        // from the label statistics (they are also masked out of the loss).
        let (delay_mean, delay_std) = mean_std(
            samples
                .iter()
                .flat_map(|s| {
                    s.targets
                        .iter()
                        .filter(|t| t.delay_s > 0.0)
                        .map(|t| tf(t.delay_s))
                })
                .collect::<Vec<_>>()
                .into_iter(),
        );
        let (jitter_mean, jitter_std) = mean_std(
            samples
                .iter()
                .flat_map(|s| {
                    s.targets
                        .iter()
                        .filter(|t| t.delay_s > 0.0)
                        .map(|t| tf(t.jitter_s2))
                })
                .collect::<Vec<_>>()
                .into_iter(),
        );
        Normalizer {
            capacity_scale: cap_max.max(1e-12),
            traffic_scale: traffic_scale.max(1e-12),
            prop_delay_scale: if pd_max > 0.0 { pd_max } else { 1.0 },
            log_targets,
            delay_mean,
            delay_std,
            jitter_mean,
            jitter_std,
        }
    }

    /// Initial link-state features: one row per directed link,
    /// `[capacity / capacity_scale, prop_delay / prop_delay_scale]`.
    pub fn link_features(&self, scenario: &Scenario) -> Tensor {
        debug_assert!(
            self.capacity_scale > 0.0 && self.prop_delay_scale > 0.0,
            "fit_with floors every scale; a loaded checkpoint must too"
        );
        let g = &scenario.graph;
        let mut t = Tensor::zeros(g.n_links(), 2);
        for (id, l) in g.links() {
            t.set(id.0, 0, l.capacity_bps / self.capacity_scale);
            t.set(id.0, 1, l.prop_delay_s / self.prop_delay_scale);
        }
        t
    }

    /// Initial path-state features: one row per routed pair (canonical
    /// order), `[demand / traffic_scale]`.
    pub fn path_features(&self, scenario: &Scenario) -> Tensor {
        debug_assert!(self.traffic_scale > 0.0, "fit_with floors the scale");
        let pairs: Vec<_> = scenario.graph.node_pairs().collect();
        let mut t = Tensor::zeros(pairs.len(), 1);
        for (i, (s, d)) in pairs.iter().enumerate() {
            t.set(i, 0, scenario.traffic.demand(*s, *d) / self.traffic_scale);
        }
        t
    }

    fn tf(&self, x: f64) -> f64 {
        if self.log_targets {
            x.max(LOG_FLOOR).ln()
        } else {
            x
        }
    }

    fn tf_inv(&self, x: f64) -> f64 {
        if self.log_targets {
            x.exp()
        } else {
            x
        }
    }

    /// Standardize targets into an `n x 2` tensor `[delay_z, jitter_z]`
    /// (in log space when `log_targets` is set).
    pub fn normalize_targets(&self, targets: &[TargetKpi]) -> Tensor {
        debug_assert!(
            self.delay_std > 0.0 && self.jitter_std > 0.0,
            "mean_std floors both stds"
        );
        Tensor::from_fn(targets.len(), 2, |r, c| {
            if c == 0 {
                (self.tf(targets[r].delay_s) - self.delay_mean) / self.delay_std
            } else {
                (self.tf(targets[r].jitter_s2) - self.jitter_mean) / self.jitter_std
            }
        })
    }

    /// Invert [`Normalizer::normalize_targets`] for one predicted row.
    pub fn denormalize(&self, delay_z: f64, jitter_z: f64) -> TargetKpi {
        TargetKpi {
            delay_s: self.tf_inv(delay_z * self.delay_std + self.delay_mean),
            jitter_s2: self.tf_inv(jitter_z * self.jitter_std + self.jitter_mean),
            drop_prob: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_netgraph::topology::nsfnet;
    use routenet_netgraph::{NodeId, TrafficMatrix};

    fn sample(delay: f64) -> Sample {
        let g = nsfnet();
        let routing = shortest_path_routing(&g).unwrap();
        let mut traffic = TrafficMatrix::zeros(g.n_nodes());
        traffic.set_demand(NodeId(0), NodeId(1), 2_000.0);
        traffic.set_demand(NodeId(3), NodeId(9), 4_000.0);
        let n = routing.n_pairs();
        Sample {
            scenario: Scenario {
                graph: g,
                routing,
                traffic,
            },
            targets: vec![
                TargetKpi {
                    delay_s: delay,
                    jitter_s2: delay * delay,
                    drop_prob: 0.0
                };
                n
            ],
            topology: "NSFNET".into(),
            intensity: 0.5,
            seed: 0,
        }
    }

    #[test]
    fn fit_extracts_scales() {
        let samples = vec![sample(0.1), sample(0.3)];
        let norm = Normalizer::fit(&samples);
        assert_eq!(norm.capacity_scale, 10_000.0);
        assert!((norm.traffic_scale - 3_000.0).abs() < 1e-9);
        assert!((norm.delay_mean - 0.2).abs() < 1e-12);
        assert!(norm.delay_std > 0.0);
    }

    #[test]
    fn features_have_expected_shapes_and_values() {
        let s = sample(0.1);
        let norm = Normalizer::fit(std::slice::from_ref(&s));
        let lf = norm.link_features(&s.scenario);
        assert_eq!(lf.shape(), (42, 2));
        // all capacities equal the scale => feature 1.0
        assert!(lf
            .data()
            .iter()
            .step_by(2)
            .all(|&x| (x - 1.0).abs() < 1e-12));
        let pf = norm.path_features(&s.scenario);
        assert_eq!(pf.shape(), (14 * 13, 1));
        // exactly two non-zero demands
        let nz = pf.data().iter().filter(|&&x| x > 0.0).count();
        assert_eq!(nz, 2);
    }

    #[test]
    fn normalize_denormalize_roundtrip() {
        let samples = vec![sample(0.1), sample(0.5), sample(0.9)];
        let norm = Normalizer::fit(&samples);
        let t = TargetKpi {
            delay_s: 0.42,
            jitter_s2: 0.05,
            drop_prob: 0.0,
        };
        let z = norm.normalize_targets(&[t]);
        let back = norm.denormalize(z.get(0, 0), z.get(0, 1));
        assert!((back.delay_s - t.delay_s).abs() < 1e-12);
        assert!((back.jitter_s2 - t.jitter_s2).abs() < 1e-12);
    }

    #[test]
    fn normalized_training_targets_are_standardized() {
        let samples = vec![sample(0.1), sample(0.5)];
        let norm = Normalizer::fit(&samples);
        let all: Vec<TargetKpi> = samples.iter().flat_map(|s| s.targets.clone()).collect();
        let z = norm.normalize_targets(&all);
        let n = z.rows() as f64;
        let mean: f64 = (0..z.rows()).map(|r| z.get(r, 0)).sum::<f64>() / n;
        let var: f64 = (0..z.rows()).map(|r| z.get(r, 0).powi(2)).sum::<f64>() / n - mean * mean;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-6);
    }

    #[test]
    fn default_is_identity() {
        let norm = Normalizer::default();
        let t = TargetKpi {
            delay_s: 1.5,
            jitter_s2: 2.5,
            drop_prob: 0.0,
        };
        let z = norm.normalize_targets(&[t]);
        assert_eq!(z.get(0, 0), 1.5);
        assert_eq!(z.get(0, 1), 2.5);
    }
}
