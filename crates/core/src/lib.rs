//! # routenet-core
//!
//! The paper's primary contribution: **RouteNet**, a graph neural network
//! that predicts per-source/destination mean delay and jitter from a
//! network's topology, routing scheme and traffic matrix — plus the
//! training loop, evaluation metrics, and the baselines the paper's
//! introduction contrasts it with (analytic M/M/1 and a fixed-input
//! fully-connected network).
//!
//! The headline property under test (the whole point of the demo paper) is
//! *generalization*: a single trained model makes accurate predictions on
//! topologies it never saw during training, because its message-passing
//! architecture is assembled at runtime from the input graph.
//!
//! ```
//! use routenet_core::prelude::*;
//! use routenet_netgraph::prelude::*;
//! use rand::SeedableRng;
//!
//! // Assemble a scenario: topology + routing + traffic.
//! let g = topology::nsfnet();
//! let r = routing::shortest_path_routing(&g).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let tm = traffic::sample_traffic_matrix(&g, &r, &TrafficModel::Gravity, 0.5, &mut rng);
//! let scenario = Scenario { graph: g, routing: r, traffic: tm };
//!
//! // An untrained model already produces structurally valid output:
//! let model = RouteNet::new(RouteNetConfig::default());
//! let preds = model.predict_scenario(&scenario);
//! assert_eq!(preds.len(), 14 * 13); // one prediction per ordered pair
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod batch;
pub mod checkpoint;
pub mod eval;
pub mod features;
pub mod indexing;
pub mod metrics;
pub mod model;
pub mod sample;
pub mod trainer;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::baseline::{FnnBaseline, FnnConfig, Mg1Baseline, Mm1Baseline, Mm1kBaseline};
    pub use crate::batch::{BatchPosition, BatchedScenario};
    pub use crate::checkpoint::{atomic_write, CheckpointError, TrainState};
    pub use crate::eval::{
        collect_by_topology, collect_predictions, emit_eval_telemetry, top_n_paths_by_delay,
        PairedEval,
    };
    pub use crate::features::Normalizer;
    pub use crate::metrics::{cdf_points, evaluate, relative_errors, EvalSummary};
    pub use crate::model::{RouteNet, RouteNetConfig};
    pub use crate::sample::{KpiPredictor, Prediction, Sample, Scenario, TargetKpi};
    pub use crate::trainer::{
        train, train_with_control, DivergenceReason, RecoveryEvent, TrainConfig, TrainControl,
        TrainError, TrainReport,
    };
}

pub use batch::{BatchPosition, BatchedScenario};
pub use model::{RouteNet, RouteNetConfig};
pub use sample::{KpiPredictor, Prediction, Sample, Scenario, TargetKpi};
pub use trainer::{train, train_with_control, TrainConfig, TrainControl, TrainError, TrainReport};
