//! Evaluation harness: run predictors over sample sets and group results.

use crate::metrics::{evaluate, EvalSummary};
use crate::sample::{KpiPredictor, Sample};
use std::collections::BTreeMap;

/// Paired predictions and ground truths, flattened over samples and pairs.
#[derive(Debug, Clone, Default)]
pub struct PairedEval {
    /// Predicted mean delays, seconds.
    pub delay_pred: Vec<f64>,
    /// True mean delays, seconds.
    pub delay_true: Vec<f64>,
    /// Predicted jitters (NaN when the predictor has no jitter head).
    pub jitter_pred: Vec<f64>,
    /// True jitters.
    pub jitter_true: Vec<f64>,
    /// Predicted drop probabilities (NaN when the predictor has no drop head).
    pub drop_pred: Vec<f64>,
    /// True drop probabilities.
    pub drop_true: Vec<f64>,
}

impl PairedEval {
    /// Number of paired observations.
    pub fn len(&self) -> usize {
        self.delay_pred.len()
    }

    /// True if no observations were collected.
    pub fn is_empty(&self) -> bool {
        self.delay_pred.is_empty()
    }

    /// Delay metrics summary, or `None` when no pairs were collected.
    ///
    /// An evaluation over samples whose flows were all unobserved (the
    /// `delay_s == 0` sentinel) is legitimately empty; callers render it as
    /// "no data" rather than panicking inside [`evaluate`].
    pub fn delay_summary(&self) -> Option<EvalSummary> {
        if self.is_empty() {
            None
        } else {
            Some(evaluate(&self.delay_pred, &self.delay_true))
        }
    }

    /// Jitter metrics summary, if the predictor produced jitter values and
    /// any pairs were collected.
    pub fn jitter_summary(&self) -> Option<EvalSummary> {
        if self.jitter_pred.is_empty() || self.jitter_pred.iter().any(|x| x.is_nan()) {
            None
        } else {
            Some(evaluate(&self.jitter_pred, &self.jitter_true))
        }
    }

    /// Drop-probability metrics, if the predictor has a drop head. Returns
    /// `(mae, pearson_r)` rather than a full relative-error summary because
    /// true drop probabilities are frequently exactly zero.
    pub fn drop_summary(&self) -> Option<(f64, f64)> {
        if self.drop_pred.is_empty() || self.drop_pred.iter().any(|x| x.is_nan()) {
            return None;
        }
        let mae = self
            .drop_pred
            .iter()
            .zip(&self.drop_true)
            .map(|(p, t)| (p - t).abs())
            .sum::<f64>()
            / self.drop_pred.len() as f64;
        Some((
            mae,
            crate::metrics::pearson(&self.drop_pred, &self.drop_true),
        ))
    }

    /// Append another evaluation's observations.
    pub fn extend(&mut self, other: &PairedEval) {
        self.delay_pred.extend_from_slice(&other.delay_pred);
        self.delay_true.extend_from_slice(&other.delay_true);
        self.jitter_pred.extend_from_slice(&other.jitter_pred);
        self.jitter_true.extend_from_slice(&other.jitter_true);
        self.drop_pred.extend_from_slice(&other.drop_pred);
        self.drop_true.extend_from_slice(&other.drop_true);
    }
}

/// Pair one sample's predictions with its ground truth, appending to `out`.
///
/// Pairs whose ground-truth delay is zero are skipped: a zero mean delay is
/// the dataset generator's sentinel for "no packet of this flow was observed
/// in the measurement window", i.e. there is no label to compare against.
fn pair_into(
    out: &mut PairedEval,
    predictor_name: &str,
    sample: &Sample,
    preds: &[crate::sample::Prediction],
) {
    assert_eq!(
        preds.len(),
        sample.targets.len(),
        "{} returned {} predictions for {} targets",
        predictor_name,
        preds.len(),
        sample.targets.len()
    );
    for (p, t) in preds.iter().zip(&sample.targets) {
        if t.delay_s <= 0.0 {
            continue; // unobserved flow: no ground truth
        }
        out.delay_pred.push(p.delay_s);
        out.delay_true.push(t.delay_s);
        out.jitter_pred.push(p.jitter_s2);
        out.jitter_true.push(t.jitter_s2);
        out.drop_pred.push(p.drop_prob);
        out.drop_true.push(t.drop_prob);
    }
}

/// Run `predictor` over `samples`, pairing predictions with ground truth.
///
/// The whole set goes through [`KpiPredictor::predict_batch`] as one sweep,
/// so predictors with per-sweep setup cost (RouteNet's compiled indices and
/// allocation arena) pay it once rather than per sample. Skips unobserved
/// pairs — see the sentinel note on [`collect_by_topology`].
pub fn collect_predictions(predictor: &dyn KpiPredictor, samples: &[Sample]) -> PairedEval {
    let scenarios: Vec<&crate::sample::Scenario> = samples.iter().map(|s| &s.scenario).collect();
    let all = predictor.predict_batch(&scenarios);
    let mut out = PairedEval::default();
    for (s, preds) in samples.iter().zip(&all) {
        pair_into(&mut out, predictor.predictor_name(), s, preds);
    }
    out
}

/// Collect predictions grouped by the samples' topology name — the grouping
/// of the paper's Fig. 3 (one CDF per topology).
///
/// Samples are grouped *before* prediction and each group runs as one
/// [`KpiPredictor::predict_batch`] sweep: all of a topology's samples share
/// a routing, so a sweep-aware predictor compiles the message-passing index
/// once per group instead of once per sample.
pub fn collect_by_topology(
    predictor: &dyn KpiPredictor,
    samples: &[Sample],
) -> BTreeMap<String, PairedEval> {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, s) in samples.iter().enumerate() {
        by_name.entry(&s.topology).or_default().push(i);
    }
    let mut groups: BTreeMap<String, PairedEval> = BTreeMap::new();
    for (name, idxs) in by_name {
        let scenarios: Vec<&crate::sample::Scenario> =
            idxs.iter().map(|&i| &samples[i].scenario).collect();
        let all = predictor.predict_batch(&scenarios);
        let mut ev = PairedEval::default();
        for (&i, preds) in idxs.iter().zip(&all) {
            pair_into(&mut ev, predictor.predictor_name(), &samples[i], preds);
        }
        groups.insert(name.to_string(), ev);
    }
    groups
}

/// Rank the `n` paths with the largest predicted delay in one sample —
/// the "Top-N paths with more delay" analytics of the paper's Fig. 4.
/// Returns `(src, dst, predicted_delay_s, true_delay_s)` sorted descending.
///
/// Pairs carrying the `delay_s == 0` unobserved-flow sentinel are skipped,
/// mirroring [`collect_predictions`]: a ranking row with a fabricated true
/// delay of zero would make every prediction for it look infinitely wrong.
pub fn top_n_paths_by_delay(
    predictor: &dyn KpiPredictor,
    sample: &Sample,
    n: usize,
) -> Vec<(usize, usize, f64, f64)> {
    let preds = predictor.predict(&sample.scenario);
    let pairs = sample.scenario.pairs();
    let mut rows: Vec<(usize, usize, f64, f64)> = pairs
        .iter()
        .zip(preds.iter())
        .zip(sample.targets.iter())
        .filter(|(_, t)| t.delay_s > 0.0)
        .map(|(((s, d), p), t)| (s.0, d.0, p.delay_s, t.delay_s))
        .collect();
    rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    rows.truncate(n);
    rows
}

/// Emit one [`Event::Eval`] telemetry record per evaluation group (e.g. per
/// topology), skipping empty groups. `scope_prefix` namespaces the group key
/// — e.g. `"fig3/"` yields scopes like `fig3/NSFNET`.
pub fn emit_eval_telemetry(
    tel: &routenet_obs::Telemetry,
    scope_prefix: &str,
    groups: &BTreeMap<String, PairedEval>,
) {
    use routenet_obs::Event;
    for (name, ev) in groups {
        if let Some(s) = ev.delay_summary() {
            tel.emit(Event::Eval {
                scope: format!("{scope_prefix}{name}"),
                n: s.n,
                mae: s.mae,
                median_re: s.median_re,
                p95_re: s.p95_re,
                pearson_r: s.pearson_r,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Mm1Baseline;
    use crate::sample::{Scenario, TargetKpi};
    use routenet_netgraph::generate;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_simnet::queueing::Mm1Network;

    fn sample_with_topology(name: &str, seed: u64) -> Sample {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generate::ring(4);
        let routing = shortest_path_routing(&g).unwrap();
        let tm = routenet_netgraph::traffic::sample_traffic_matrix(
            &g,
            &routing,
            &routenet_netgraph::TrafficModel::Uniform { min_frac: 0.5 },
            0.4,
            &mut rng,
        );
        let net = Mm1Network::build(&g, &routing, &tm, 1_000.0);
        let targets = net
            .predict_all(&routing)
            .into_iter()
            .map(|p| TargetKpi {
                delay_s: p.mean_delay_s,
                jitter_s2: p.jitter_s2,
                drop_prob: 0.0,
            })
            .collect();
        Sample {
            scenario: Scenario {
                graph: g,
                routing,
                traffic: tm,
            },
            targets,
            topology: name.into(),
            intensity: 0.4,
            seed,
        }
    }

    #[test]
    fn collect_is_exact_for_matching_model() {
        let s = sample_with_topology("A", 1);
        let ev = collect_predictions(&Mm1Baseline::default(), &[s]);
        assert_eq!(ev.len(), 12);
        let sum = ev.delay_summary().expect("non-empty eval");
        assert!(sum.mre < 1e-9);
        let jsum = ev.jitter_summary().expect("mm1 predicts jitter");
        assert!(jsum.mre < 1e-9);
    }

    #[test]
    fn empty_eval_summaries_are_none_not_panics() {
        let ev = PairedEval::default();
        assert!(ev.is_empty());
        assert!(ev.delay_summary().is_none());
        assert!(ev.jitter_summary().is_none());
        assert!(ev.drop_summary().is_none());
        // An all-sentinel sample must produce the same empty eval.
        let mut s = sample_with_topology("A", 9);
        for t in &mut s.targets {
            t.delay_s = 0.0;
        }
        let ev = collect_predictions(&Mm1Baseline::default(), &[s]);
        assert!(ev.is_empty());
        assert!(ev.delay_summary().is_none());
    }

    #[test]
    fn top_n_skips_unobserved_flow_sentinels() {
        let mut s = sample_with_topology("A", 10);
        let n_pairs = s.targets.len();
        // Mark the three truly slowest paths as unobserved; they must not
        // appear in the ranking even though the predictor still ranks them
        // highest by *predicted* delay.
        let mut order: Vec<usize> = (0..n_pairs).collect();
        order.sort_by(|&a, &b| s.targets[b].delay_s.total_cmp(&s.targets[a].delay_s));
        for &i in order.iter().take(3) {
            s.targets[i].delay_s = 0.0;
        }
        let top = top_n_paths_by_delay(&Mm1Baseline::default(), &s, n_pairs);
        assert_eq!(top.len(), n_pairs - 3);
        for (_, _, _, t) in &top {
            assert!(*t > 0.0, "sentinel pair leaked into ranking");
        }
    }

    #[test]
    fn eval_telemetry_emits_one_event_per_group() {
        let tel = routenet_obs::Telemetry::in_memory("core", "test");
        let samples = vec![sample_with_topology("A", 1), sample_with_topology("B", 2)];
        let groups = collect_by_topology(&Mm1Baseline::default(), &samples);
        emit_eval_telemetry(&tel, "test/", &groups);
        let evals: Vec<_> = tel
            .records()
            .into_iter()
            .filter_map(|rec| match rec.event {
                routenet_obs::Event::Eval { scope, n, .. } => Some((scope, n)),
                _ => None,
            })
            .collect();
        assert_eq!(evals, vec![("test/A".into(), 12), ("test/B".into(), 12)]);
    }

    #[test]
    fn grouping_by_topology() {
        let samples = vec![
            sample_with_topology("A", 1),
            sample_with_topology("B", 2),
            sample_with_topology("A", 3),
        ];
        let groups = collect_by_topology(&Mm1Baseline::default(), &samples);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups["A"].len(), 24);
        assert_eq!(groups["B"].len(), 12);
    }

    #[test]
    fn top_n_is_sorted_and_truncated() {
        let s = sample_with_topology("A", 4);
        let top = top_n_paths_by_delay(&Mm1Baseline::default(), &s, 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        // With exact predictor, predicted == true for each row.
        for (_, _, p, t) in &top {
            assert!((p - t).abs() < 1e-12);
        }
        // Top-1 is the global max over all pairs.
        let max_true = s
            .targets
            .iter()
            .map(|t| t.delay_s)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((top[0].3 - max_true).abs() < 1e-12);
    }

    #[test]
    fn batch_sweep_matches_per_sample_predictions() {
        use crate::model::{RouteNet, RouteNetConfig};
        // RouteNet's sweep-aware predict_batch (arena-reused tape, cached
        // message-passing index) must reproduce per-sample predict exactly.
        let mut model = RouteNet::new(RouteNetConfig {
            link_state_dim: 4,
            path_state_dim: 4,
            readout_hidden: 8,
            t_iterations: 2,
            predict_jitter: true,
            predict_drops: false,
            seed: 2,
        });
        model.set_normalizer(crate::features::Normalizer {
            capacity_scale: 10_000.0,
            traffic_scale: 230.0,
            ..crate::features::Normalizer::default()
        });
        let samples = vec![
            sample_with_topology("A", 1),
            sample_with_topology("A", 2),
            sample_with_topology("B", 3),
        ];
        let batched = collect_predictions(&model, &samples);
        let mut per_sample = PairedEval::default();
        for s in &samples {
            let preds = model.predict(&s.scenario);
            pair_into(&mut per_sample, model.predictor_name(), s, &preds);
        }
        assert_eq!(batched.delay_pred, per_sample.delay_pred);
        assert_eq!(batched.jitter_pred, per_sample.jitter_pred);
        assert_eq!(batched.len(), per_sample.len());
    }

    #[test]
    fn paired_eval_extend() {
        let s1 = sample_with_topology("A", 5);
        let s2 = sample_with_topology("A", 6);
        let mut a = collect_predictions(&Mm1Baseline::default(), &[s1]);
        let b = collect_predictions(&Mm1Baseline::default(), &[s2]);
        let n = a.len();
        a.extend(&b);
        assert_eq!(a.len(), n + b.len());
    }
}
