//! Regression metrics and error distributions for KPI predictions.
//!
//! These produce the numbers behind the paper's figures: per-topology
//! relative-error CDFs (Fig. 3), regression fit quality (Fig. 2), and the
//! summary statistics of the generalization table.

use serde::{Deserialize, Serialize};

/// Summary of a prediction-vs-truth comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalSummary {
    /// Number of (prediction, truth) pairs.
    pub n: usize,
    /// Mean absolute error.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean relative error `|p - t| / t`.
    /// unit: ratio
    pub mre: f64,
    /// Median relative error.
    /// unit: ratio
    pub median_re: f64,
    /// 95th-percentile relative error.
    /// unit: ratio
    pub p95_re: f64,
    /// Pearson correlation coefficient.
    pub pearson_r: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Relative errors `|p - t| / max(t, eps)` with `eps` guarding tiny truths.
pub fn relative_errors(preds: &[f64], truths: &[f64]) -> Vec<f64> {
    assert_eq!(preds.len(), truths.len(), "length mismatch");
    const EPS: f64 = 1e-12;
    preds
        .iter()
        .zip(truths)
        .map(|(&p, &t)| (p - t).abs() / t.abs().max(EPS))
        .collect()
}

/// Signed relative errors `(p - t) / max(|t|, eps)` (Fig. 3 uses the
/// distribution of signed errors in some renditions; we expose both).
///
/// Zero-truth rows are *skipped*: `delay == 0` is the simulator's sentinel
/// for a flow that produced no measured packets (the same family
/// `top_n_paths_by_delay` filters), and flooring them with `eps` turned
/// each one into a ~1e12 pseudo-error that silently dominated MRE/p95.
/// Use [`signed_relative_errors_counted`] to also learn how many rows
/// were skipped.
pub fn signed_relative_errors(preds: &[f64], truths: &[f64]) -> Vec<f64> {
    signed_relative_errors_counted(preds, truths).0
}

/// [`signed_relative_errors`] plus the number of zero-truth sentinel rows
/// that were skipped, so callers can surface coverage honestly instead of
/// absorbing unobserved flows into the error distribution.
pub fn signed_relative_errors_counted(preds: &[f64], truths: &[f64]) -> (Vec<f64>, usize) {
    assert_eq!(preds.len(), truths.len(), "length mismatch");
    const EPS: f64 = 1e-12;
    let mut errors = Vec::with_capacity(preds.len());
    let mut skipped = 0usize;
    for (&p, &t) in preds.iter().zip(truths) {
        // lint: allow(float-eq, reason = "the simulator writes the unobserved-flow sentinel as exactly 0.0; epsilon matching would also swallow real tiny delays")
        if t == 0.0 {
            skipped += 1;
        } else {
            errors.push((p - t) / t.abs().max(EPS));
        }
    }
    (errors, skipped)
}

/// `q`-th percentile (0..=100) by linear interpolation on sorted data.
/// Panics on empty input.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q));
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q / 100.0 * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Pearson correlation coefficient. Returns 0 for degenerate inputs.
pub fn pearson(preds: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(preds.len(), truths.len());
    let n = preds.len() as f64;
    if preds.is_empty() {
        return 0.0;
    }
    let mp = preds.iter().sum::<f64>() / n;
    let mt = truths.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vp = 0.0;
    let mut vt = 0.0;
    for (&p, &t) in preds.iter().zip(truths) {
        cov += (p - mp) * (t - mt);
        vp += (p - mp) * (p - mp);
        vt += (t - mt) * (t - mt);
    }
    if vp <= 0.0 || vt <= 0.0 {
        0.0
    } else {
        cov / (vp.sqrt() * vt.sqrt())
    }
}

/// Coefficient of determination R² = 1 - SS_res / SS_tot.
pub fn r_squared(preds: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(preds.len(), truths.len());
    if truths.is_empty() {
        return 0.0;
    }
    let mt = truths.iter().sum::<f64>() / truths.len() as f64;
    let ss_res: f64 = preds
        .iter()
        .zip(truths)
        .map(|(&p, &t)| (t - p) * (t - p))
        .sum();
    let ss_tot: f64 = truths.iter().map(|&t| (t - mt) * (t - mt)).sum();
    if ss_tot <= 0.0 {
        0.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Full evaluation summary.
pub fn evaluate(preds: &[f64], truths: &[f64]) -> EvalSummary {
    assert_eq!(preds.len(), truths.len());
    assert!(!preds.is_empty(), "evaluate on empty data");
    let n = preds.len();
    let mae = preds
        .iter()
        .zip(truths)
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / n as f64;
    let rmse = (preds
        .iter()
        .zip(truths)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / n as f64)
        .sqrt();
    let re = relative_errors(preds, truths);
    EvalSummary {
        n,
        mae,
        rmse,
        mre: re.iter().sum::<f64>() / n as f64,
        median_re: percentile(&re, 50.0),
        p95_re: percentile(&re, 95.0),
        pearson_r: pearson(preds, truths),
        r2: r_squared(preds, truths),
    }
}

/// Empirical CDF sampled at `n_points` evenly spaced quantiles:
/// returns `(value, cumulative_probability)` pairs, the series plotted in
/// the paper's Fig. 3.
pub fn cdf_points(xs: &[f64], n_points: usize) -> Vec<(f64, f64)> {
    assert!(!xs.is_empty() && n_points >= 2);
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    (0..n_points)
        .map(|i| {
            let q = i as f64 / (n_points - 1) as f64;
            let idx = (q * (v.len() - 1) as f64).round() as usize;
            (v[idx], (idx + 1) as f64 / v.len() as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let t = vec![1.0, 2.0, 3.0, 4.0];
        let s = evaluate(&t, &t);
        assert_eq!(s.mae, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.mre, 0.0);
        assert!((s.pearson_r - 1.0).abs() < 1e-12);
        assert!((s.r2 - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn known_errors() {
        let preds = vec![1.1, 1.9, 3.3];
        let truths = vec![1.0, 2.0, 3.0];
        let s = evaluate(&preds, &truths);
        assert!((s.mae - (0.1 + 0.1 + 0.3) / 3.0).abs() < 1e-12);
        let re = relative_errors(&preds, &truths);
        assert!((re[0] - 0.1).abs() < 1e-9);
        assert!((re[1] - 0.05).abs() < 1e-9);
        assert!((re[2] - 0.1).abs() < 1e-9);
        let sre = signed_relative_errors(&preds, &truths);
        assert!(sre[1] < 0.0 && sre[0] > 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pearson_sign_and_invariance() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 10.0 - 2.0 * v).collect();
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| 5.0 + 0.1 * v).collect();
        assert!((pearson(&x, &z) - 1.0).abs() < 1e-12);
        // constant input => 0
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let truths = vec![1.0, 2.0, 3.0];
        let mean = vec![2.0, 2.0, 2.0];
        assert!(r_squared(&mean, &truths).abs() < 1e-12);
        // worse than mean => negative
        let bad = vec![5.0, 5.0, 5.0];
        assert!(r_squared(&bad, &truths) < 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_spans_data() {
        let xs = vec![0.5, 0.1, 0.9, 0.3, 0.7];
        let cdf = cdf_points(&xs, 5);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf[0].0, 0.1);
        assert_eq!(cdf[4].0, 0.9);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cdf[4].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn relative_errors_length_checked() {
        relative_errors(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn tiny_truth_guarded() {
        let re = relative_errors(&[1.0], &[0.0]);
        assert!(re[0].is_finite());
    }

    #[test]
    fn signed_errors_skip_zero_truth_sentinels() {
        // Middle row is an unobserved-flow sentinel (delay == 0); the old
        // eps floor turned it into a 2e12 pseudo-error dominating every
        // percentile.
        let preds = vec![1.1, 2.0, 2.7];
        let truths = vec![1.0, 0.0, 3.0];
        let (sre, skipped) = signed_relative_errors_counted(&preds, &truths);
        assert_eq!(skipped, 1);
        assert_eq!(sre.len(), 2);
        assert!((sre[0] - 0.1).abs() < 1e-9);
        assert!((sre[1] + 0.1).abs() < 1e-9);
        assert!(sre.iter().all(|e| e.abs() < 1.0), "no 1e12 pseudo-errors");
        // The convenience wrapper agrees.
        assert_eq!(signed_relative_errors(&preds, &truths), sre);
        // Tiny-but-nonzero truths still go through the eps guard.
        let (sre, skipped) = signed_relative_errors_counted(&[1.0], &[1e-15]);
        assert_eq!(skipped, 0);
        assert!(sre[0].is_finite());
    }
}
