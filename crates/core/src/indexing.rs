//! Static message-passing index built from a routing scheme.
//!
//! RouteNet's dynamic architecture is "assembled at runtime based on the
//! input graphs" (paper §2). [`PathTensors`] is that assembly: for each hop
//! position it lists which paths are still active and which link each of
//! them traverses, so the per-position GRU steps can run as dense batched
//! matrix ops with row gather/scatter.

use crate::sample::Scenario;
use routenet_netgraph::{NodeId, RoutingScheme};

/// Index data for one hop position `k`.
#[derive(Debug, Clone)]
pub struct PositionIndex {
    /// Paths whose length exceeds `k` (indices into canonical pair order).
    pub path_idx: Vec<usize>,
    /// For each active path, the link it traverses at position `k`.
    pub link_idx: Vec<usize>,
}

/// Message-passing index for one scenario.
#[derive(Debug, Clone)]
pub struct PathTensors {
    /// Number of paths (= routed pairs).
    pub n_paths: usize,
    /// Number of directed links.
    pub n_links: usize,
    /// Longest path length in links.
    pub max_len: usize,
    /// Per-position activity, `positions.len() == max_len`.
    pub positions: Vec<PositionIndex>,
    /// Length (hop count) of each path.
    pub path_len: Vec<usize>,
    /// Endpoints of each path, canonical order.
    pub pairs: Vec<(NodeId, NodeId)>,
}

impl PathTensors {
    /// Build the index from a scenario's routing.
    pub fn build(scenario: &Scenario) -> Self {
        Self::from_routing(&scenario.routing, scenario.graph.n_links())
    }

    /// Build from a routing scheme directly.
    pub fn from_routing(routing: &RoutingScheme, n_links: usize) -> Self {
        let mut pairs = Vec::with_capacity(routing.n_pairs());
        let mut path_len = Vec::with_capacity(routing.n_pairs());
        let mut max_len = 0usize;
        for (s, d, links) in routing.pairs() {
            pairs.push((s, d));
            path_len.push(links.len());
            max_len = max_len.max(links.len());
        }
        let mut positions = Vec::with_capacity(max_len);
        for k in 0..max_len {
            let mut path_idx = Vec::new();
            let mut link_idx = Vec::new();
            for (p, (_, _, links)) in routing.pairs().enumerate() {
                if k < links.len() {
                    path_idx.push(p);
                    link_idx.push(links[k].0);
                }
            }
            positions.push(PositionIndex { path_idx, link_idx });
        }
        PathTensors {
            n_paths: pairs.len(),
            n_links,
            max_len,
            positions,
            path_len,
            pairs,
        }
    }

    /// Total number of (path, position) message slots — the tape cost driver.
    pub fn total_hops(&self) -> usize {
        self.path_len.iter().sum()
    }

    /// Number of paths traversing each link (degree of the aggregation).
    pub fn link_fanin(&self) -> Vec<usize> {
        let mut fanin = vec![0usize; self.n_links];
        for pos in &self.positions {
            for &l in &pos.link_idx {
                fanin[l] += 1;
            }
        }
        fanin
    }

    /// A 0/1 row mask (`n_paths x dim` semantics, returned per-row) marking
    /// paths active at position `k`.
    pub fn active_mask(&self, k: usize) -> Vec<bool> {
        let mut mask = vec![false; self.n_paths];
        for &p in &self.positions[k].path_idx {
            mask[p] = true;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_netgraph::topology::nsfnet;
    use routenet_netgraph::TrafficMatrix;

    fn tensors() -> PathTensors {
        let g = nsfnet();
        let routing = shortest_path_routing(&g).unwrap();
        let traffic = TrafficMatrix::zeros(g.n_nodes());
        let sc = Scenario {
            graph: g,
            routing,
            traffic,
        };
        PathTensors::build(&sc)
    }

    #[test]
    fn shape_matches_routing() {
        let t = tensors();
        assert_eq!(t.n_paths, 14 * 13);
        assert_eq!(t.n_links, 42);
        assert!(t.max_len >= 2);
        assert_eq!(t.positions.len(), t.max_len);
        assert_eq!(t.path_len.len(), t.n_paths);
        assert_eq!(t.pairs.len(), t.n_paths);
    }

    #[test]
    fn position_zero_contains_every_path() {
        let t = tensors();
        assert_eq!(t.positions[0].path_idx.len(), t.n_paths);
        // positions are monotonically shrinking
        for w in t.positions.windows(2) {
            assert!(w[1].path_idx.len() <= w[0].path_idx.len());
        }
    }

    #[test]
    fn total_hops_equals_sum_of_position_sizes() {
        let t = tensors();
        let by_pos: usize = t.positions.iter().map(|p| p.path_idx.len()).sum();
        assert_eq!(t.total_hops(), by_pos);
    }

    #[test]
    fn link_fanin_counts_traversals() {
        let g = nsfnet();
        let routing = shortest_path_routing(&g).unwrap();
        let t = PathTensors::from_routing(&routing, g.n_links());
        let fanin = t.link_fanin();
        for (i, f) in fanin.iter().enumerate() {
            let brute = routing.pairs_through(routenet_netgraph::LinkId(i)).len();
            assert_eq!(*f, brute, "link {i}");
        }
        // every link carries at least its endpoints' direct pair
        assert!(fanin.iter().all(|&f| f >= 1));
    }

    #[test]
    fn active_mask_consistent_with_path_len() {
        let t = tensors();
        for k in 0..t.max_len {
            let mask = t.active_mask(k);
            for (p, &m) in mask.iter().enumerate() {
                assert_eq!(m, t.path_len[p] > k, "path {p} pos {k}");
            }
        }
    }

    #[test]
    fn indices_in_range() {
        let t = tensors();
        for pos in &t.positions {
            assert_eq!(pos.path_idx.len(), pos.link_idx.len());
            assert!(pos.path_idx.iter().all(|&p| p < t.n_paths));
            assert!(pos.link_idx.iter().all(|&l| l < t.n_links));
        }
    }
}
