//! Property-based tests for the netgraph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routenet_netgraph::algo::{
    avg_path_length_hops, diameter_hops, is_strongly_connected, k_shortest_paths, path_weight,
    shortest_path,
};
use routenet_netgraph::generate::{barabasi_albert, erdos_renyi, synthetic, waxman};
use routenet_netgraph::routing::{
    k_path_random_routing, randomized_routing, shortest_path_routing,
};
use routenet_netgraph::topology::{assign_capacities, CapacityScheme};
use routenet_netgraph::traffic::{
    link_loads, link_utilizations, max_utilization, sample_structure, sample_traffic_matrix,
    scale_to_max_utilization, TrafficModel,
};
use routenet_netgraph::{Graph, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generator family yields a strongly connected graph of the right
    /// order for any seed.
    #[test]
    fn generators_always_connected(seed in 0u64..1000, n in 4usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, 0.15, &mut rng);
        prop_assert_eq!(g.n_nodes(), n);
        prop_assert!(is_strongly_connected(&g));

        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n.max(4), 2, &mut rng);
        prop_assert!(is_strongly_connected(&g));

        let mut rng = StdRng::seed_from_u64(seed);
        let g = waxman(n, 0.7, 0.3, 1e-3, &mut rng);
        prop_assert!(is_strongly_connected(&g));
    }

    /// Dijkstra on unit weights equals hop-count BFS distance; its length is
    /// bounded by the diameter.
    #[test]
    fn shortest_paths_bounded_by_diameter(seed in 0u64..500, n in 4usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = erdos_renyi(n, 0.25, &mut rng);
        g.set_unit_weights();
        let diam = diameter_hops(&g).expect("connected");
        for (s, d) in g.node_pairs() {
            let p = shortest_path(&g, s, d).expect("connected");
            prop_assert!(p.len() - 1 <= diam);
            prop_assert_eq!(path_weight(&g, &p).unwrap(), (p.len() - 1) as f64);
        }
        let avg = avg_path_length_hops(&g).unwrap();
        prop_assert!(avg <= diam as f64);
        prop_assert!(avg >= 1.0);
    }

    /// Yen's k-shortest paths are sorted by weight, loopless, and start with
    /// the Dijkstra path.
    #[test]
    fn yen_sorted_and_simple(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(8, 0.4, &mut rng);
        let (s, d) = (NodeId(0), NodeId(7));
        let paths = k_shortest_paths(&g, s, d, 5);
        prop_assert!(!paths.is_empty());
        prop_assert_eq!(&paths[0], &shortest_path(&g, s, d).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for p in &paths {
            let w = path_weight(&g, p).unwrap();
            prop_assert!(w >= prev - 1e-12);
            prev = w;
            let uniq: std::collections::HashSet<_> = p.iter().collect();
            prop_assert_eq!(uniq.len(), p.len());
        }
        // pairwise distinct
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                prop_assert_ne!(&paths[i], &paths[j]);
            }
        }
    }

    /// Every routing builder produces a scheme that validates and routes all
    /// pairs on any connected random graph.
    #[test]
    fn routing_builders_always_valid(seed in 0u64..300, n in 4usize..16) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, 0.3, &mut rng);
        let r = shortest_path_routing(&g).unwrap();
        r.validate(&g).unwrap();
        let r = randomized_routing(&g, 3.0, &mut rng).unwrap();
        r.validate(&g).unwrap();
        let r = k_path_random_routing(&g, 3, &mut rng).unwrap();
        r.validate(&g).unwrap();
        prop_assert_eq!(r.n_pairs(), n * (n - 1));
    }

    /// Link loads are non-negative, and total load equals sum(demand * hops).
    #[test]
    fn load_conservation(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = synthetic(12, &mut rng);
        let r = shortest_path_routing(&g).unwrap();
        let tm = sample_structure(12, &TrafficModel::Gravity, &mut rng);
        let loads = link_loads(&g, &r, &tm);
        prop_assert!(loads.iter().all(|&l| l >= 0.0));
        let expected: f64 = tm.entries().map(|(s, d, v)| v * r.hops(s, d) as f64).sum();
        let got: f64 = loads.iter().sum();
        prop_assert!((got - expected).abs() <= 1e-9 * expected.max(1.0));
    }

    /// Scaling to a target utilization always lands exactly on the target,
    /// for every traffic model and intensity.
    #[test]
    fn intensity_scaling_exact(seed in 0u64..300, util in 0.05f64..0.95) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = synthetic(10, &mut rng);
        assign_capacities(&mut g, &CapacityScheme::kdn_default(), &mut rng);
        let r = shortest_path_routing(&g).unwrap();
        for model in [
            TrafficModel::Uniform { min_frac: 0.1 },
            TrafficModel::Gravity,
            TrafficModel::Hotspot { hot_frac: 0.2, hot_mult: 5.0 },
        ] {
            let mut tm = sample_structure(10, &model, &mut rng);
            scale_to_max_utilization(&g, &r, &mut tm, util);
            let mu = max_utilization(&g, &r, &tm);
            prop_assert!((mu - util).abs() < 1e-9, "model {:?}: {} != {}", model, mu, util);
            for u in link_utilizations(&g, &r, &tm) {
                prop_assert!(u <= util + 1e-9);
            }
        }
    }

    /// sample_traffic_matrix is deterministic in the seed.
    #[test]
    fn traffic_deterministic(seed in 0u64..200) {
        let g = routenet_netgraph::topology::nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        let tm1 = sample_traffic_matrix(&g, &r, &TrafficModel::Gravity, 0.5,
            &mut StdRng::seed_from_u64(seed));
        let tm2 = sample_traffic_matrix(&g, &r, &TrafficModel::Gravity, 0.5,
            &mut StdRng::seed_from_u64(seed));
        for ((_, _, a), (_, _, b)) in tm1.entries().zip(tm2.entries()) {
            prop_assert_eq!(a, b);
        }
    }
}

/// Duplex graphs are symmetric: every link has a reverse twin.
#[test]
fn zoo_graphs_are_symmetric() {
    for g in [
        routenet_netgraph::topology::nsfnet(),
        routenet_netgraph::topology::geant2(),
        routenet_netgraph::topology::gbn(),
    ] {
        for (_, l) in g.links() {
            assert!(
                g.link_between(l.dst, l.src).is_some(),
                "{}: missing reverse of {}->{}",
                g.name,
                l.src,
                l.dst
            );
        }
    }
}

/// Graph JSON roundtrip preserves routing behaviour.
#[test]
fn graph_serde_preserves_routing() {
    let g = routenet_netgraph::topology::geant2();
    let json = serde_json::to_string(&g).unwrap();
    let mut g2: Graph = serde_json::from_str(&json).unwrap();
    g2.rebuild_index();
    let r1 = shortest_path_routing(&g).unwrap();
    let r2 = shortest_path_routing(&g2).unwrap();
    for (s, d) in g.node_pairs() {
        assert_eq!(r1.path(s, d), r2.path(s, d));
    }
}
