//! # routenet-netgraph
//!
//! Network-graph substrate for the RouteNet generalization suite: directed
//! capacitated topologies, a topology zoo (NSFNET, Geant2, GBN), random
//! topology generators, source/destination routing schemes, and traffic
//! matrices with intensity control.
//!
//! Everything downstream builds on these types: the discrete-event simulator
//! walks [`graph::Graph`] links, the RouteNet GNN assembles its message
//! passing from a [`routing::RoutingScheme`], and dataset intensity sweeps
//! use [`traffic::scale_to_max_utilization`].
//!
//! ## Quick example
//!
//! ```
//! use routenet_netgraph::prelude::*;
//! use rand::SeedableRng;
//!
//! let g = topology::nsfnet();
//! let r = routing::shortest_path_routing(&g).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let tm = traffic::sample_traffic_matrix(
//!     &g, &r, &traffic::TrafficModel::Gravity, 0.6, &mut rng);
//! assert!((traffic::max_utilization(&g, &r, &tm) - 0.6).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod algo;
pub mod generate;
pub mod graph;
pub mod routing;
pub mod topology;
pub mod traffic;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::algo;
    pub use crate::generate;
    pub use crate::graph::{Graph, Link, LinkId, NodeId};
    pub use crate::routing::{self, RoutingScheme};
    pub use crate::topology;
    pub use crate::traffic::{self, TrafficMatrix, TrafficModel};
}

pub use graph::{Graph, Link, LinkId, NodeId};
pub use routing::RoutingScheme;
pub use traffic::{TrafficMatrix, TrafficModel};
