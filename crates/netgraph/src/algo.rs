//! Graph algorithms: connectivity, shortest paths, k-shortest paths.
//!
//! All path-finding here operates on link `weight` attributes (set them with
//! [`Graph::set_unit_weights`] for hop-count routing). Paths are returned as
//! node sequences; [`crate::routing`] converts them to link sequences.

use crate::graph::{Graph, LinkId, NodeId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// A simple path as a node sequence `src, ..., dst` (at least 2 nodes).
pub type NodePath = Vec<NodeId>;

/// True if every node can reach every other node over directed links.
pub fn is_strongly_connected(g: &Graph) -> bool {
    let n = g.n_nodes();
    if n <= 1 {
        return true;
    }
    // For the symmetric (duplex) graphs used in this suite, forward BFS from
    // node 0 plus reverse BFS from node 0 decides strong connectivity.
    reachable_from(g, NodeId(0), false).len() == n && reachable_from(g, NodeId(0), true).len() == n
}

/// Set of nodes reachable from `start` (following links forward, or backward
/// if `reverse`).
pub fn reachable_from(g: &Graph, start: NodeId, reverse: bool) -> HashSet<NodeId> {
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let links = if reverse {
            g.in_links(u)
        } else {
            g.out_links(u)
        };
        for &l in links {
            let link = g.adj_link(l);
            let v = if reverse { link.src } else { link.dst };
            if seen.insert(v) {
                queue.push_back(v);
            }
        }
    }
    seen
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on dist; tie-break on node id for determinism.
        // total_cmp gives NaN a fixed order instead of silently treating it
        // as equal; upstream weight validation keeps distances finite anyway.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest path tree by link weight (Dijkstra).
///
/// Returns `(dist, parent_link)` where `parent_link[v]` is the link entering
/// `v` on a shortest path from `src`, or `None` if unreachable / `v == src`.
pub fn dijkstra(g: &Graph, src: NodeId) -> (Vec<f64>, Vec<Option<LinkId>>) {
    let n = g.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<LinkId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.0] {
            continue;
        }
        for &lid in g.out_links(u) {
            let link = g.adj_link(lid);
            debug_assert!(link.weight >= 0.0, "Dijkstra requires non-negative weights");
            let nd = d + link.weight;
            if nd < dist[link.dst.0] {
                dist[link.dst.0] = nd;
                parent[link.dst.0] = Some(lid);
                heap.push(HeapEntry {
                    dist: nd,
                    node: link.dst,
                });
            }
        }
    }
    (dist, parent)
}

/// Shortest path from `src` to `dst` as a node sequence, or `None` if
/// unreachable.
pub fn shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Option<NodePath> {
    if src == dst {
        return Some(vec![src]);
    }
    let (dist, parent) = dijkstra(g, src);
    if !dist[dst.0].is_finite() {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        let lid = parent[cur.0]?;
        let link = g.link(lid).ok()?;
        cur = link.src;
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Total weight of a node path (sum of link weights along it).
/// Returns `None` if any consecutive pair has no link.
pub fn path_weight(g: &Graph, path: &[NodeId]) -> Option<f64> {
    let mut w = 0.0;
    for pair in path.windows(2) {
        let lid = g.link_between(pair[0], pair[1])?;
        w += g.link(lid).ok()?.weight;
    }
    Some(w)
}

/// Yen's algorithm: up to `k` loopless shortest paths from `src` to `dst`,
/// ordered by increasing total weight.
///
/// Used to generate diverse routing schemes (the paper trains over "a wide
/// variety of routing schemes" per topology).
pub fn k_shortest_paths(g: &Graph, src: NodeId, dst: NodeId, k: usize) -> Vec<NodePath> {
    let mut result: Vec<NodePath> = Vec::new();
    let Some(first) = shortest_path(g, src, dst) else {
        return result;
    };
    result.push(first);
    // Candidate set of (weight, path).
    let mut candidates: Vec<(f64, NodePath)> = Vec::new();
    while result.len() < k {
        let Some(last) = result.last().cloned() else {
            break; // unreachable: `first` was pushed above
        };
        for i in 0..last.len() - 1 {
            let spur_node = last[i];
            let root_path = &last[..=i];
            // Build a filtered graph: remove links used by previous results
            // sharing this root, and remove root nodes (except spur).
            let mut banned_links: HashSet<LinkId> = HashSet::new();
            for p in result.iter().chain(candidates.iter().map(|(_, p)| p)) {
                if p.len() > i && p[..=i] == *root_path {
                    if let Some(lid) = g.link_between(p[i], p[i + 1]) {
                        banned_links.insert(lid);
                    }
                }
            }
            let banned_nodes: HashSet<NodeId> = root_path[..i].iter().copied().collect();
            if let Some(spur) =
                shortest_path_filtered(g, spur_node, dst, &banned_links, &banned_nodes)
            {
                let mut total = root_path.to_vec();
                total.extend_from_slice(&spur[1..]);
                if let Some(w) = path_weight(g, &total) {
                    if !result.contains(&total) && !candidates.iter().any(|(_, p)| *p == total) {
                        candidates.push((w, total));
                    }
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the lightest candidate (deterministic tie-break on path lexicographic order).
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        result.push(candidates.remove(0).1);
    }
    result
}

fn shortest_path_filtered(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    banned_links: &HashSet<LinkId>,
    banned_nodes: &HashSet<NodeId>,
) -> Option<NodePath> {
    let n = g.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<LinkId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.0] {
            continue;
        }
        for &lid in g.out_links(u) {
            if banned_links.contains(&lid) {
                continue;
            }
            let link = g.adj_link(lid);
            if banned_nodes.contains(&link.dst) {
                continue;
            }
            let nd = d + link.weight;
            if nd < dist[link.dst.0] {
                dist[link.dst.0] = nd;
                parent[link.dst.0] = Some(lid);
                heap.push(HeapEntry {
                    dist: nd,
                    node: link.dst,
                });
            }
        }
    }
    if !dist[dst.0].is_finite() {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        let lid = parent[cur.0]?;
        cur = g.link(lid).ok()?.src;
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Edge betweenness centrality on hop-count shortest paths (Brandes'
/// algorithm adapted to directed links).
///
/// `betweenness[l]` is the sum over ordered pairs `(s, t)` of the fraction
/// of shortest `s→t` paths that traverse link `l`. High-betweenness links
/// are the structural bottlenecks that network-visibility analytics surface.
pub fn edge_betweenness(g: &Graph) -> Vec<f64> {
    let n = g.n_nodes();
    let mut centrality = vec![0.0f64; g.n_links()];
    for s in 0..n {
        // BFS from s tracking shortest-path counts.
        let mut dist = vec![usize::MAX; n];
        let mut sigma = vec![0.0f64; n];
        let mut preds: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        let mut order: Vec<NodeId> = Vec::new();
        let mut queue = VecDeque::new();
        dist[s] = 0;
        sigma[s] = 1.0;
        queue.push_back(NodeId(s));
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &lid in g.out_links(u) {
                let v = g.adj_link(lid).dst;
                if dist[v.0] == usize::MAX {
                    dist[v.0] = dist[u.0] + 1;
                    queue.push_back(v);
                }
                if dist[v.0] == dist[u.0] + 1 {
                    sigma[v.0] += sigma[u.0];
                    preds[v.0].push(lid);
                }
            }
        }
        // Back-propagate dependencies.
        let mut delta = vec![0.0f64; n];
        for &w in order.iter().rev() {
            for &lid in &preds[w.0] {
                let u = g.adj_link(lid).src;
                let share = sigma[u.0] / sigma[w.0] * (1.0 + delta[w.0]);
                centrality[lid.0] += share;
                delta[u.0] += share;
            }
        }
    }
    centrality
}

/// Hop-count diameter: longest shortest path (in hops) over all pairs.
/// Requires strong connectivity; returns `None` otherwise.
pub fn diameter_hops(g: &Graph) -> Option<usize> {
    let n = g.n_nodes();
    let mut best = 0usize;
    for s in 0..n {
        // BFS by hops.
        let mut depth = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        depth[s] = 0;
        queue.push_back(NodeId(s));
        while let Some(u) = queue.pop_front() {
            for v in g.successors(u) {
                if depth[v.0] == usize::MAX {
                    depth[v.0] = depth[u.0] + 1;
                    queue.push_back(v);
                }
            }
        }
        for (v, &d) in depth.iter().enumerate() {
            if d == usize::MAX && v != s {
                return None;
            }
            if d != usize::MAX {
                best = best.max(d);
            }
        }
    }
    Some(best)
}

/// Average shortest-path length in hops over all ordered pairs.
/// Returns `None` if the graph is not strongly connected.
pub fn avg_path_length_hops(g: &Graph) -> Option<f64> {
    let n = g.n_nodes();
    if n < 2 {
        return Some(0.0);
    }
    let mut total = 0usize;
    for s in 0..n {
        let mut depth = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        depth[s] = 0;
        queue.push_back(NodeId(s));
        while let Some(u) = queue.pop_front() {
            for v in g.successors(u) {
                if depth[v.0] == usize::MAX {
                    depth[v.0] = depth[u.0] + 1;
                    queue.push_back(v);
                }
            }
        }
        for (v, &d) in depth.iter().enumerate() {
            if v != s {
                if d == usize::MAX {
                    return None;
                }
                total += d;
            }
        }
    }
    Some(total as f64 / (n * (n - 1)) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2-3 line plus a heavy shortcut 0->3.
    fn line_with_shortcut() -> Graph {
        let mut g = Graph::new("line", 4);
        g.add_duplex(NodeId(0), NodeId(1), 1e6, 0.0).unwrap();
        g.add_duplex(NodeId(1), NodeId(2), 1e6, 0.0).unwrap();
        g.add_duplex(NodeId(2), NodeId(3), 1e6, 0.0).unwrap();
        g.add_duplex(NodeId(0), NodeId(3), 1e6, 0.0).unwrap();
        let l = g.link_between(NodeId(0), NodeId(3)).unwrap();
        g.link_mut(l).unwrap().weight = 10.0;
        let l = g.link_between(NodeId(3), NodeId(0)).unwrap();
        g.link_mut(l).unwrap().weight = 10.0;
        g
    }

    #[test]
    fn dijkstra_prefers_light_path() {
        let g = line_with_shortcut();
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(path_weight(&g, &p), Some(3.0));
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let mut g = Graph::new("disc", 3);
        g.add_duplex(NodeId(0), NodeId(1), 1e6, 0.0).unwrap();
        assert_eq!(shortest_path(&g, NodeId(0), NodeId(2)), None);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn trivial_path_to_self() {
        let g = line_with_shortcut();
        assert_eq!(
            shortest_path(&g, NodeId(1), NodeId(1)),
            Some(vec![NodeId(1)])
        );
    }

    #[test]
    fn connectivity_of_duplex_line() {
        let g = line_with_shortcut();
        assert!(is_strongly_connected(&g));
        assert_eq!(reachable_from(&g, NodeId(0), false).len(), 4);
        assert_eq!(reachable_from(&g, NodeId(0), true).len(), 4);
    }

    #[test]
    fn one_way_graph_not_strongly_connected() {
        let mut g = Graph::new("oneway", 2);
        g.add_link(NodeId(0), NodeId(1), 1e6, 0.0).unwrap();
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn yen_finds_distinct_ordered_paths() {
        let g = line_with_shortcut();
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(3), 3);
        assert_eq!(ps.len(), 2); // only two simple paths exist
        assert_eq!(ps[0], vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(ps[1], vec![NodeId(0), NodeId(3)]);
        let w0 = path_weight(&g, &ps[0]).unwrap();
        let w1 = path_weight(&g, &ps[1]).unwrap();
        assert!(w0 <= w1);
    }

    #[test]
    fn yen_k1_equals_dijkstra() {
        let g = line_with_shortcut();
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(2), 1);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0], shortest_path(&g, NodeId(0), NodeId(2)).unwrap());
    }

    #[test]
    fn yen_paths_are_loopless() {
        let mut g = Graph::new("k4", 4);
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                g.add_duplex(NodeId(a as usize), NodeId(b as usize), 1e6, 0.0)
                    .unwrap();
            }
        }
        for p in k_shortest_paths(&g, NodeId(0), NodeId(3), 8) {
            let set: HashSet<_> = p.iter().collect();
            assert_eq!(set.len(), p.len(), "path {p:?} has a loop");
            assert_eq!(*p.first().unwrap(), NodeId(0));
            assert_eq!(*p.last().unwrap(), NodeId(3));
        }
    }

    /// Brute-force betweenness: enumerate all shortest paths per pair.
    fn brute_betweenness(g: &Graph) -> Vec<f64> {
        fn all_shortest(g: &Graph, s: NodeId, t: NodeId) -> Vec<Vec<LinkId>> {
            // BFS layers then DFS over predecessor DAG.
            let n = g.n_nodes();
            let mut dist = vec![usize::MAX; n];
            dist[s.0] = 0;
            let mut queue = VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &lid in g.out_links(u) {
                    let v = g.link(lid).unwrap().dst;
                    if dist[v.0] == usize::MAX {
                        dist[v.0] = dist[u.0] + 1;
                        queue.push_back(v);
                    }
                }
            }
            let mut out = Vec::new();
            let mut stack = vec![(t, Vec::new())];
            while let Some((v, path)) = stack.pop() {
                if v == s {
                    let mut p: Vec<LinkId> = path.clone();
                    p.reverse();
                    out.push(p);
                    continue;
                }
                for &lid in g.in_links(v) {
                    let u = g.link(lid).unwrap().src;
                    if dist[u.0] + 1 == dist[v.0] {
                        let mut p = path.clone();
                        p.push(lid);
                        stack.push((u, p));
                    }
                }
            }
            out
        }
        let mut c = vec![0.0; g.n_links()];
        for (s, t) in g.node_pairs() {
            let paths = all_shortest(g, s, t);
            if paths.is_empty() {
                continue;
            }
            let frac = 1.0 / paths.len() as f64;
            for p in &paths {
                for l in p {
                    c[l.0] += frac;
                }
            }
        }
        c
    }

    #[test]
    fn betweenness_matches_brute_force_on_zoo() {
        for g in [crate::topology::nsfnet(), crate::topology::gbn()] {
            let fast = edge_betweenness(&g);
            let brute = brute_betweenness(&g);
            for (i, (a, b)) in fast.iter().zip(&brute).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9,
                    "{}: link {i}: brandes {a} vs brute {b}",
                    g.name
                );
            }
        }
    }

    #[test]
    fn betweenness_ring_uniform() {
        // Perfect symmetry: every link carries the same load.
        let g = crate::generate::ring(6);
        let c = edge_betweenness(&g);
        for w in c.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
        // Total betweenness = total shortest-path hops over pairs.
        let total: f64 = c.iter().sum();
        let expected: f64 = g
            .node_pairs()
            .map(|(s, d)| (shortest_path(&g, s, d).unwrap().len() - 1) as f64)
            .sum();
        assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn betweenness_star_center_dominates() {
        // Star: all transit flows pass the hub's links.
        let mut g = Graph::new("star", 5);
        for leaf in 1..5 {
            g.add_duplex(NodeId(0), NodeId(leaf), 1e6, 0.0).unwrap();
        }
        let c = edge_betweenness(&g);
        // Each directed hub link (0->leaf) carries: 1 (pair 0->leaf) + 3
        // (transit from other leaves) = 4; leaf->0 likewise.
        for v in c {
            assert!((v - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn diameter_and_avg_length() {
        let mut g = Graph::new("line3", 3);
        g.add_duplex(NodeId(0), NodeId(1), 1e6, 0.0).unwrap();
        g.add_duplex(NodeId(1), NodeId(2), 1e6, 0.0).unwrap();
        assert_eq!(diameter_hops(&g), Some(2));
        // pairs: 0-1:1, 0-2:2, 1-0:1, 1-2:1, 2-0:2, 2-1:1 => 8/6
        assert!((avg_path_length_hops(&g).unwrap() - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let mut g = Graph::new("disc", 3);
        g.add_duplex(NodeId(0), NodeId(1), 1e6, 0.0).unwrap();
        assert_eq!(diameter_hops(&g), None);
        assert_eq!(avg_path_length_hops(&g), None);
    }
}
