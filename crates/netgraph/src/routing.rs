//! Source/destination routing schemes.
//!
//! A [`RoutingScheme`] fixes one loop-free path per ordered node pair — the
//! same abstraction the paper feeds RouteNet ("a source-destination routing
//! scheme"). Generators produce the routing diversity the training protocol
//! needs: deterministic shortest path, randomized link-weight shortest path,
//! and random-k-shortest-path selection.

use crate::algo::{k_shortest_paths, shortest_path, NodePath};
use crate::graph::{Graph, GraphError, LinkId, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors when building or validating a routing scheme.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutingError {
    /// No path exists between a pair (graph not strongly connected).
    Unreachable {
        /// Source node id.
        src: usize,
        /// Destination node id.
        dst: usize,
    },
    /// A stored path is malformed (wrong endpoints or a missing link).
    InvalidPath {
        /// Source node id.
        src: usize,
        /// Destination node id.
        dst: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// Underlying graph error.
    Graph(GraphError),
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::Unreachable { src, dst } => write!(f, "no path from {src} to {dst}"),
            RoutingError::InvalidPath { src, dst, reason } => {
                write!(f, "invalid path {src}->{dst}: {reason}")
            }
            RoutingError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for RoutingError {}

impl From<GraphError> for RoutingError {
    fn from(e: GraphError) -> Self {
        RoutingError::Graph(e)
    }
}

/// A complete source-destination routing scheme: exactly one path per ordered
/// node pair `(s, d)`, `s != d`, stored as a link-id sequence.
///
/// `PartialEq` compares the full path tables — eval sweeps use it to detect
/// consecutive samples that share a routing and reuse the compiled
/// message-passing index instead of rebuilding it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingScheme {
    n_nodes: usize,
    /// `paths[s * n + d]` = link sequence from s to d (empty for s == d).
    paths: Vec<Vec<LinkId>>,
}

impl RoutingScheme {
    /// Build from per-pair node paths. Validates continuity against `g`.
    pub fn from_node_paths(
        g: &Graph,
        mut pair_paths: impl FnMut(NodeId, NodeId) -> Option<NodePath>,
    ) -> Result<Self, RoutingError> {
        let n = g.n_nodes();
        let mut paths = vec![Vec::new(); n * n];
        for (s, d) in g.node_pairs() {
            let np = pair_paths(s, d).ok_or(RoutingError::Unreachable { src: s.0, dst: d.0 })?;
            let lp = node_path_to_links(g, s, d, &np)?;
            paths[s.0 * n + d.0] = lp;
        }
        Ok(RoutingScheme { n_nodes: n, paths })
    }

    /// Number of nodes this scheme was built for.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of routed pairs (`n * (n-1)`).
    pub fn n_pairs(&self) -> usize {
        self.n_nodes * (self.n_nodes - 1)
    }

    /// Link sequence for the pair `(s, d)`. Empty slice iff `s == d`.
    pub fn path(&self, s: NodeId, d: NodeId) -> &[LinkId] {
        &self.paths[s.0 * self.n_nodes + d.0]
    }

    /// Iterate `(src, dst, links)` over all routed pairs in canonical order.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, &[LinkId])> {
        let n = self.n_nodes;
        (0..n).flat_map(move |s| {
            (0..n)
                .filter(move |d| *d != s)
                .map(move |d| (NodeId(s), NodeId(d), self.paths[s * n + d].as_slice()))
        })
    }

    /// Node sequence of the path for `(s, d)`.
    pub fn node_path(&self, g: &Graph, s: NodeId, d: NodeId) -> Result<NodePath, RoutingError> {
        let mut nodes = vec![s];
        for &l in self.path(s, d) {
            nodes.push(g.link(l)?.dst);
        }
        Ok(nodes)
    }

    /// Hop count for `(s, d)`.
    pub fn hops(&self, s: NodeId, d: NodeId) -> usize {
        self.path(s, d).len()
    }

    /// Longest path length in links over all pairs.
    pub fn max_hops(&self) -> usize {
        self.paths.iter().map(|p| p.len()).max().unwrap_or(0)
    }

    /// All pairs whose path traverses `link`, in canonical order.
    pub fn pairs_through(&self, link: LinkId) -> Vec<(NodeId, NodeId)> {
        let n = self.n_nodes;
        let mut out = Vec::new();
        for s in 0..n {
            for d in 0..n {
                if s != d && self.paths[s * n + d].contains(&link) {
                    out.push((NodeId(s), NodeId(d)));
                }
            }
        }
        out
    }

    /// Validate every stored path against `g`: endpoints match, links chain
    /// head-to-tail, and no link repeats (loop-freedom).
    pub fn validate(&self, g: &Graph) -> Result<(), RoutingError> {
        if self.n_nodes != g.n_nodes() {
            return Err(RoutingError::InvalidPath {
                src: 0,
                dst: 0,
                reason: format!(
                    "scheme built for {} nodes, graph has {}",
                    self.n_nodes,
                    g.n_nodes()
                ),
            });
        }
        for (s, d, links) in self.pairs() {
            if links.is_empty() {
                return Err(RoutingError::InvalidPath {
                    src: s.0,
                    dst: d.0,
                    reason: "empty path".into(),
                });
            }
            let mut cur = s;
            let mut seen = std::collections::HashSet::new();
            for &l in links {
                if !seen.insert(l) {
                    return Err(RoutingError::InvalidPath {
                        src: s.0,
                        dst: d.0,
                        reason: format!("link {l} repeated"),
                    });
                }
                let link = g.link(l)?;
                if link.src != cur {
                    return Err(RoutingError::InvalidPath {
                        src: s.0,
                        dst: d.0,
                        reason: format!("link {l} does not start at {cur}"),
                    });
                }
                cur = link.dst;
            }
            if cur != d {
                return Err(RoutingError::InvalidPath {
                    src: s.0,
                    dst: d.0,
                    reason: format!("path ends at {cur}, expected {d}"),
                });
            }
        }
        Ok(())
    }
}

fn node_path_to_links(
    g: &Graph,
    s: NodeId,
    d: NodeId,
    np: &[NodeId],
) -> Result<Vec<LinkId>, RoutingError> {
    if np.first() != Some(&s) || np.last() != Some(&d) {
        return Err(RoutingError::InvalidPath {
            src: s.0,
            dst: d.0,
            reason: format!("node path endpoints {:?} mismatch", (np.first(), np.last())),
        });
    }
    let mut links = Vec::with_capacity(np.len().saturating_sub(1));
    for w in np.windows(2) {
        let lid = g
            .link_between(w[0], w[1])
            .ok_or_else(|| RoutingError::InvalidPath {
                src: s.0,
                dst: d.0,
                reason: format!("no link {} -> {}", w[0], w[1]),
            })?;
        links.push(lid);
    }
    Ok(links)
}

/// Deterministic shortest-path routing over the graph's current link weights.
pub fn shortest_path_routing(g: &Graph) -> Result<RoutingScheme, RoutingError> {
    RoutingScheme::from_node_paths(g, |s, d| shortest_path(g, s, d))
}

/// Randomized shortest-path routing: perturb every link weight with a random
/// factor in `[1, 1 + spread)`, then route on the perturbed weights. Distinct
/// seeds yield distinct but still "reasonable" routing schemes — this is the
/// routing-diversity knob used when generating training data.
pub fn randomized_routing<R: Rng>(
    g: &Graph,
    spread: f64,
    rng: &mut R,
) -> Result<RoutingScheme, RoutingError> {
    assert!(spread >= 0.0 && spread.is_finite());
    let mut pg = g.clone();
    let ids: Vec<_> = pg.links().map(|(id, _)| id).collect();
    for id in ids {
        let f = 1.0 + rng.gen::<f64>() * spread;
        pg.adj_link_mut(id).weight *= f;
    }
    RoutingScheme::from_node_paths(&pg, |s, d| shortest_path(&pg, s, d))
}

/// Destination-based routing: one reverse shortest-path tree per
/// destination, as installed by destination-keyed forwarding tables (IP
/// longest-prefix match). Guarantees the *suffix property*: if the path
/// `s→d` passes through `v`, then the path `v→d` is exactly its suffix —
/// a consistency that per-pair path selection (e.g. k-shortest) need not
/// have.
pub fn destination_based_routing(g: &Graph) -> Result<RoutingScheme, RoutingError> {
    let n = g.n_nodes();
    // For each destination d, run Dijkstra on the reversed graph from d,
    // yielding for every node its next link toward d.
    let mut next_link: Vec<Vec<Option<LinkId>>> = vec![vec![None; n]; n];
    for (d, row) in next_link.iter_mut().enumerate() {
        let (dist, _) = reverse_dijkstra(g, NodeId(d));
        for s in 0..n {
            if s == d || !dist[s].is_finite() {
                continue;
            }
            // Choose the outgoing link that lies on a shortest path,
            // deterministic tie-break on link id.
            let mut best: Option<(f64, LinkId)> = None;
            for &lid in g.out_links(NodeId(s)) {
                let link = g.link(lid)?;
                let cand = link.weight + dist[link.dst.0];
                let better = match best {
                    None => true,
                    Some((w, bl)) => {
                        cand < w - 1e-12 || ((cand - w).abs() <= 1e-12 && lid.0 < bl.0)
                    }
                };
                if better {
                    best = Some((cand, lid));
                }
            }
            row[s] = best.map(|(_, l)| l);
        }
    }
    let mut paths = vec![Vec::new(); n * n];
    for (s, d) in g.node_pairs() {
        let mut cur = s;
        let mut links = Vec::new();
        while cur != d {
            let lid =
                next_link[d.0][cur.0].ok_or(RoutingError::Unreachable { src: s.0, dst: d.0 })?;
            links.push(lid);
            cur = g.link(lid)?.dst;
            if links.len() > n {
                return Err(RoutingError::InvalidPath {
                    src: s.0,
                    dst: d.0,
                    reason: "forwarding loop".into(),
                });
            }
        }
        paths[s.0 * n + d.0] = links;
    }
    Ok(RoutingScheme { n_nodes: n, paths })
}

/// Dijkstra over reversed links from `dst`: `dist[v]` = weight of the
/// lightest `v → dst` path.
fn reverse_dijkstra(g: &Graph, dst: NodeId) -> (Vec<f64>, Vec<Option<LinkId>>) {
    let n = g.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<LinkId>> = vec![None; n];
    let mut heap = std::collections::BinaryHeap::new();
    dist[dst.0] = 0.0;
    heap.push(RevEntry {
        dist: 0.0,
        node: dst,
    });
    while let Some(RevEntry {
        dist: dcur,
        node: u,
    }) = heap.pop()
    {
        if dcur > dist[u.0] {
            continue;
        }
        for &lid in g.in_links(u) {
            let link = g.adj_link(lid);
            let nd = dcur + link.weight;
            if nd < dist[link.src.0] {
                dist[link.src.0] = nd;
                parent[link.src.0] = Some(lid);
                heap.push(RevEntry {
                    dist: nd,
                    node: link.src,
                });
            }
        }
    }
    (dist, parent)
}

#[derive(PartialEq)]
struct RevEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for RevEntry {}

impl Ord for RevEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // total_cmp: NaN gets a fixed position instead of corrupting the
        // heap's ordering invariants; weights are validated finite upstream.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for RevEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Random k-shortest-path routing: per pair, pick uniformly among the `k`
/// lightest loopless paths. Produces heavier route diversity (including
/// deliberately non-optimal detours) than weight perturbation.
pub fn k_path_random_routing<R: Rng>(
    g: &Graph,
    k: usize,
    rng: &mut R,
) -> Result<RoutingScheme, RoutingError> {
    assert!(k >= 1);
    RoutingScheme::from_node_paths(g, |s, d| {
        let cands = k_shortest_paths(g, s, d, k);
        if cands.is_empty() {
            None
        } else {
            Some(cands[rng.gen_range(0..cands.len())].clone())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::nsfnet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sp_routing_covers_all_pairs_and_validates() {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        assert_eq!(r.n_pairs(), 14 * 13);
        r.validate(&g).unwrap();
        assert_eq!(r.pairs().count(), 14 * 13);
    }

    #[test]
    fn sp_routing_paths_minimal_in_hops() {
        let mut g = nsfnet();
        g.set_unit_weights();
        let r = shortest_path_routing(&g).unwrap();
        for (s, d, links) in r.pairs() {
            let sp = shortest_path(&g, s, d).unwrap();
            assert_eq!(links.len(), sp.len() - 1, "pair {s}->{d} not minimal");
        }
    }

    #[test]
    fn adjacent_pair_routes_direct() {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        let l = g.link_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(r.path(NodeId(0), NodeId(1)), &[l]);
        assert_eq!(r.hops(NodeId(0), NodeId(1)), 1);
    }

    #[test]
    fn randomized_routing_differs_across_seeds_but_validates() {
        let g = nsfnet();
        let r1 = randomized_routing(&g, 2.0, &mut StdRng::seed_from_u64(1)).unwrap();
        let r2 = randomized_routing(&g, 2.0, &mut StdRng::seed_from_u64(2)).unwrap();
        r1.validate(&g).unwrap();
        r2.validate(&g).unwrap();
        let differs = g.node_pairs().any(|(s, d)| r1.path(s, d) != r2.path(s, d));
        assert!(differs, "different seeds should give different schemes");
    }

    #[test]
    fn randomized_routing_zero_spread_is_shortest_path() {
        let g = nsfnet();
        let det = shortest_path_routing(&g).unwrap();
        let r = randomized_routing(&g, 0.0, &mut StdRng::seed_from_u64(9)).unwrap();
        for (s, d) in g.node_pairs() {
            assert_eq!(det.path(s, d), r.path(s, d));
        }
    }

    #[test]
    fn k_path_routing_validates_and_uses_detours() {
        let g = nsfnet();
        let r = k_path_random_routing(&g, 4, &mut StdRng::seed_from_u64(5)).unwrap();
        r.validate(&g).unwrap();
        // With k=4 at least one pair should deviate from the deterministic SP.
        let det = shortest_path_routing(&g).unwrap();
        assert!(g.node_pairs().any(|(s, d)| r.path(s, d) != det.path(s, d)));
    }

    #[test]
    fn destination_based_routing_validates_and_is_shortest() {
        let mut g = nsfnet();
        g.set_unit_weights();
        let r = destination_based_routing(&g).unwrap();
        r.validate(&g).unwrap();
        for (s, d, links) in r.pairs() {
            let sp = shortest_path(&g, s, d).unwrap();
            assert_eq!(links.len(), sp.len() - 1, "{s}->{d} not hop-minimal");
        }
    }

    #[test]
    fn destination_based_routing_has_suffix_property() {
        let g = nsfnet();
        let r = destination_based_routing(&g).unwrap();
        for (s, d, links) in r.pairs() {
            // At every intermediate node v, the remaining links must equal
            // path(v, d) exactly.
            let mut cur = s;
            for (i, &l) in links.iter().enumerate() {
                if cur != s {
                    assert_eq!(
                        &links[i..],
                        r.path(cur, d),
                        "suffix property violated at {cur} on {s}->{d}"
                    );
                }
                cur = g.link(l).unwrap().dst;
            }
        }
    }

    #[test]
    fn k_path_routing_may_violate_suffix_property() {
        // Contrast: per-pair random path choice is NOT forwarding-consistent
        // in general. We only check that the machinery runs; violation is
        // probabilistic, so no assertion on it.
        let g = nsfnet();
        let r = k_path_random_routing(&g, 4, &mut StdRng::seed_from_u64(2)).unwrap();
        r.validate(&g).unwrap();
    }

    #[test]
    fn pairs_through_lists_exactly_traversing_pairs() {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        let l = g.link_between(NodeId(0), NodeId(1)).unwrap();
        let through = r.pairs_through(l);
        assert!(through.contains(&(NodeId(0), NodeId(1))));
        for (s, d) in &through {
            assert!(r.path(*s, *d).contains(&l));
        }
        // cross-check count against brute force
        let brute = g
            .node_pairs()
            .filter(|(s, d)| r.path(*s, *d).contains(&l))
            .count();
        assert_eq!(through.len(), brute);
    }

    #[test]
    fn node_path_matches_link_path() {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        for (s, d, links) in r.pairs() {
            let np = r.node_path(&g, s, d).unwrap();
            assert_eq!(np.len(), links.len() + 1);
            assert_eq!(np[0], s);
            assert_eq!(*np.last().unwrap(), d);
        }
    }

    #[test]
    fn validate_rejects_wrong_graph() {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        let other = crate::topology::geant2();
        assert!(r.validate(&other).is_err());
    }

    #[test]
    fn max_hops_bounded_by_diameter() {
        let mut g = nsfnet();
        g.set_unit_weights();
        let r = shortest_path_routing(&g).unwrap();
        let diam = crate::algo::diameter_hops(&g).unwrap();
        assert_eq!(r.max_hops(), diam);
    }
}
