//! Traffic matrices and link-load analysis.
//!
//! A [`TrafficMatrix`] holds the average offered rate (bits/s) for every
//! ordered node pair — the third RouteNet input next to topology and routing.
//! Generators produce matrices "with different traffic intensity" (§2.1 of
//! the paper) by scaling a random structure to a target maximum link
//! utilization.

use crate::graph::{Graph, LinkId, NodeId};
use crate::routing::RoutingScheme;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Average traffic demand per ordered node pair, in bits/s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n_nodes: usize,
    /// `demand[s * n + d]`, zero on the diagonal.
    /// unit: bit/s
    demands_bps: Vec<f64>,
}

impl TrafficMatrix {
    /// All-zero matrix for `n_nodes` nodes.
    pub fn zeros(n_nodes: usize) -> Self {
        TrafficMatrix {
            n_nodes,
            demands_bps: vec![0.0; n_nodes * n_nodes],
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Demand for `(s, d)` in bits/s (0 when `s == d`).
    pub fn demand(&self, s: NodeId, d: NodeId) -> f64 {
        self.demands_bps[s.0 * self.n_nodes + d.0]
    }

    /// Set the demand for `(s, d)`. Panics on the diagonal or on a negative /
    /// non-finite rate.
    pub fn set_demand(&mut self, s: NodeId, d: NodeId, bps: f64) {
        assert!(s != d, "diagonal demands are not allowed");
        assert!(
            bps.is_finite() && bps >= 0.0,
            "demand must be finite and >= 0"
        );
        self.demands_bps[s.0 * self.n_nodes + d.0] = bps;
    }

    /// Iterate `(src, dst, demand)` over all off-diagonal entries in
    /// canonical order.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        let n = self.n_nodes;
        (0..n).flat_map(move |s| {
            (0..n)
                .filter(move |d| *d != s)
                .map(move |d| (NodeId(s), NodeId(d), self.demands_bps[s * n + d]))
        })
    }

    /// Sum of all demands, bits/s.
    pub fn total_bps(&self) -> f64 {
        self.demands_bps.iter().sum()
    }

    /// Multiply every demand by `f`.
    pub fn scale(&mut self, f: f64) {
        assert!(f.is_finite() && f >= 0.0);
        for d in &mut self.demands_bps {
            *d *= f;
        }
    }
}

/// Traffic-matrix structural models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Each pair draws uniformly from `[min_frac, 1.0] * unit`. The unit is
    /// arbitrary — matrices are rescaled to the target intensity afterwards.
    Uniform {
        /// Lower bound of the per-pair draw, as a fraction of the unit.
        min_frac: f64,
    },
    /// Gravity model: demand(s, d) ∝ mass(s) * mass(d), with masses drawn
    /// uniformly from `(0, 1]`. Produces realistic heavy-hitter structure.
    Gravity,
    /// Bimodal "hotspot" model: a fraction `hot_frac` of pairs carry
    /// `hot_mult` times the base rate. Stress-tests non-uniform loads.
    Hotspot {
        /// Fraction of pairs that are hotspots.
        hot_frac: f64,
        /// Rate multiplier applied to hotspot pairs.
        hot_mult: f64,
    },
}

/// Draw the *structure* of a traffic matrix under `model` (unnormalized).
pub fn sample_structure<R: Rng>(
    n_nodes: usize,
    model: &TrafficModel,
    rng: &mut R,
) -> TrafficMatrix {
    let mut tm = TrafficMatrix::zeros(n_nodes);
    match model {
        TrafficModel::Uniform { min_frac } => {
            assert!((0.0..=1.0).contains(min_frac));
            for s in 0..n_nodes {
                for d in 0..n_nodes {
                    if s != d {
                        let v = min_frac + (1.0 - min_frac) * rng.gen::<f64>();
                        tm.set_demand(NodeId(s), NodeId(d), v);
                    }
                }
            }
        }
        TrafficModel::Gravity => {
            let mass: Vec<f64> = (0..n_nodes).map(|_| rng.gen::<f64>().max(1e-3)).collect();
            for s in 0..n_nodes {
                for d in 0..n_nodes {
                    if s != d {
                        tm.set_demand(NodeId(s), NodeId(d), mass[s] * mass[d]);
                    }
                }
            }
        }
        TrafficModel::Hotspot { hot_frac, hot_mult } => {
            assert!((0.0..=1.0).contains(hot_frac));
            assert!(*hot_mult >= 1.0);
            for s in 0..n_nodes {
                for d in 0..n_nodes {
                    if s != d {
                        let base = 0.5 + 0.5 * rng.gen::<f64>();
                        let v = if rng.gen::<f64>() < *hot_frac {
                            base * hot_mult
                        } else {
                            base
                        };
                        tm.set_demand(NodeId(s), NodeId(d), v);
                    }
                }
            }
        }
    }
    tm
}

/// Per-link offered load (bits/s) under `tm` routed by `routing`.
pub fn link_loads(g: &Graph, routing: &RoutingScheme, tm: &TrafficMatrix) -> Vec<f64> {
    let mut loads = vec![0.0; g.n_links()];
    for (s, d, demand) in tm.entries() {
        if demand > 0.0 {
            for &l in routing.path(s, d) {
                loads[l.0] += demand;
            }
        }
    }
    loads
}

/// Per-link utilization `load / capacity` under `tm`.
pub fn link_utilizations(g: &Graph, routing: &RoutingScheme, tm: &TrafficMatrix) -> Vec<f64> {
    link_loads(g, routing, tm)
        .into_iter()
        .enumerate()
        .map(|(i, load)| {
            let capacity_bps = g.adj_link(LinkId(i)).capacity_bps;
            debug_assert!(capacity_bps > 0.0, "graph links carry positive capacity");
            load / capacity_bps
        })
        .collect()
}

/// Maximum link utilization under `tm`.
pub fn max_utilization(g: &Graph, routing: &RoutingScheme, tm: &TrafficMatrix) -> f64 {
    link_utilizations(g, routing, tm)
        .into_iter()
        .fold(0.0, f64::max)
}

/// Rescale `tm` so the maximum link utilization equals `target` (0 < target).
///
/// This is the intensity knob of the dataset generator: the paper's datasets
/// sweep "different traffic intensity" levels; we parameterize intensity as
/// the bottleneck utilization, which maps monotonically to delay regime.
///
/// Returns the applied scale factor. Panics if the matrix routes no traffic.
pub fn scale_to_max_utilization(
    g: &Graph,
    routing: &RoutingScheme,
    tm: &mut TrafficMatrix,
    target: f64,
) -> f64 {
    assert!(target > 0.0 && target.is_finite());
    let cur = max_utilization(g, routing, tm);
    assert!(cur > 0.0, "traffic matrix routes no traffic; cannot scale");
    let f = target / cur;
    tm.scale(f);
    f
}

/// Generate a complete traffic matrix at a given intensity: draw a structure
/// under `model` and rescale so the bottleneck link runs at `max_util`.
pub fn sample_traffic_matrix<R: Rng>(
    g: &Graph,
    routing: &RoutingScheme,
    model: &TrafficModel,
    max_util: f64,
    rng: &mut R,
) -> TrafficMatrix {
    let mut tm = sample_structure(g.n_nodes(), model, rng);
    scale_to_max_utilization(g, routing, &mut tm, max_util);
    tm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::shortest_path_routing;
    use crate::topology::nsfnet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Graph, RoutingScheme) {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        (g, r)
    }

    #[test]
    fn zeros_has_no_demand() {
        let tm = TrafficMatrix::zeros(5);
        assert_eq!(tm.total_bps(), 0.0);
        assert_eq!(tm.entries().count(), 20);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_set_panics() {
        let mut tm = TrafficMatrix::zeros(3);
        tm.set_demand(NodeId(1), NodeId(1), 5.0);
    }

    #[test]
    fn uniform_structure_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let tm = sample_structure(10, &TrafficModel::Uniform { min_frac: 0.2 }, &mut rng);
        for (_, _, v) in tm.entries() {
            assert!((0.2..=1.0).contains(&v));
        }
    }

    #[test]
    fn gravity_structure_is_rank_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let tm = sample_structure(6, &TrafficModel::Gravity, &mut rng);
        // gravity: d(s,a)*d(t,b) == d(s,b)*d(t,a) for distinct s,t,a,b
        let d = |s: usize, t: usize| tm.demand(NodeId(s), NodeId(t));
        let lhs = d(0, 2) * d(1, 3);
        let rhs = d(0, 3) * d(1, 2);
        assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(rhs.abs()).max(1e-12));
    }

    #[test]
    fn hotspot_creates_heavy_pairs() {
        let mut rng = StdRng::seed_from_u64(3);
        let tm = sample_structure(
            12,
            &TrafficModel::Hotspot {
                hot_frac: 0.1,
                hot_mult: 10.0,
            },
            &mut rng,
        );
        let vals: Vec<f64> = tm.entries().map(|(_, _, v)| v).collect();
        let max = vals.iter().cloned().fold(0.0, f64::max);
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(
            max > 3.0 * mean,
            "expected heavy hitters: max {max}, mean {mean}"
        );
    }

    #[test]
    fn link_loads_conserve_traffic() {
        let (g, r) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let tm = sample_structure(
            g.n_nodes(),
            &TrafficModel::Uniform { min_frac: 0.1 },
            &mut rng,
        );
        let loads = link_loads(&g, &r, &tm);
        // Sum of link loads == sum over pairs of demand * hops.
        let expected: f64 = tm.entries().map(|(s, d, v)| v * r.hops(s, d) as f64).sum();
        let got: f64 = loads.iter().sum();
        assert!((got - expected).abs() < 1e-9 * expected);
    }

    #[test]
    fn scale_to_target_hits_target_exactly() {
        let (g, r) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut tm = sample_structure(
            g.n_nodes(),
            &TrafficModel::Uniform { min_frac: 0.1 },
            &mut rng,
        );
        scale_to_max_utilization(&g, &r, &mut tm, 0.7);
        let mu = max_utilization(&g, &r, &tm);
        assert!((mu - 0.7).abs() < 1e-12, "max util {mu}");
    }

    #[test]
    fn sample_traffic_matrix_end_to_end() {
        let (g, r) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let tm = sample_traffic_matrix(&g, &r, &TrafficModel::Gravity, 0.5, &mut rng);
        assert!((max_utilization(&g, &r, &tm) - 0.5).abs() < 1e-12);
        assert!(tm.total_bps() > 0.0);
        // every utilization <= max
        for u in link_utilizations(&g, &r, &tm) {
            assert!(u <= 0.5 + 1e-12);
        }
    }

    #[test]
    fn scaling_is_linear() {
        let (g, r) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let mut tm = sample_structure(
            g.n_nodes(),
            &TrafficModel::Uniform { min_frac: 0.5 },
            &mut rng,
        );
        let before = max_utilization(&g, &r, &tm);
        tm.scale(2.0);
        let after = max_utilization(&g, &r, &tm);
        assert!((after - 2.0 * before).abs() < 1e-9 * after);
    }
}
