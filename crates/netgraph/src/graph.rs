//! Directed network graph with capacitated links.
//!
//! The graph is the shared substrate of the whole suite: the simulator walks
//! its links, routing schemes are sequences of its link ids, and RouteNet's
//! message passing is assembled from its adjacency structure.
//!
//! Conventions:
//! - Links are **directed**. A physical full-duplex cable between `a` and `b`
//!   is modeled as two independent links (`a→b`, `b→a`), which is how both
//!   OMNeT++ models and the public RouteNet datasets treat them.
//! - Capacities are in **bits per second**, propagation delays in **seconds**.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Index of a directed link in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A directed, capacitated link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Transmission capacity in bits/s. Must be finite and positive.
    pub capacity_bps: f64,
    /// Propagation delay in seconds (ignored by pure queueing models, added
    /// verbatim by the simulator). Non-negative.
    pub prop_delay_s: f64,
    /// Administrative weight used by weighted shortest-path routing.
    pub weight: f64,
}

/// Errors produced when building or querying a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id referenced a node that does not exist.
    NodeOutOfRange {
        /// Offending node id.
        node: usize,
        /// Number of nodes in the graph.
        n_nodes: usize,
    },
    /// A link id referenced a link that does not exist.
    LinkOutOfRange {
        /// Offending link id.
        link: usize,
        /// Number of links in the graph.
        n_links: usize,
    },
    /// A link had a non-positive or non-finite capacity.
    BadCapacity(f64),
    /// A link had a negative or non-finite propagation delay.
    BadPropDelay(f64),
    /// A self-loop (`src == dst`) was rejected.
    SelfLoop {
        /// The node with the rejected self-loop.
        node: usize,
    },
    /// A duplicate directed link between the same node pair was rejected.
    DuplicateLink {
        /// Source node id.
        src: usize,
        /// Destination node id.
        dst: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n_nodes } => {
                write!(f, "node id {node} out of range (graph has {n_nodes} nodes)")
            }
            GraphError::LinkOutOfRange { link, n_links } => {
                write!(f, "link id {link} out of range (graph has {n_links} links)")
            }
            GraphError::BadCapacity(c) => {
                write!(f, "link capacity must be finite and > 0, got {c}")
            }
            GraphError::BadPropDelay(d) => {
                write!(f, "propagation delay must be finite and >= 0, got {d}")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} rejected"),
            GraphError::DuplicateLink { src, dst } => {
                write!(f, "duplicate directed link {src}->{dst} rejected")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed network topology.
///
/// Node ids are dense (`0..n_nodes()`), link ids are dense (`0..n_links()`).
/// At most one directed link may exist per ordered node pair; parallel links
/// are rejected so that `(src, dst)` uniquely identifies a link, matching the
/// routing-table representation used throughout the suite.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    /// Optional human-readable name ("NSFNET", "Geant2", ...).
    pub name: String,
    n_nodes: usize,
    links: Vec<Link>,
    /// Outgoing link ids per node, in insertion order.
    out_links: Vec<Vec<LinkId>>,
    /// Incoming link ids per node, in insertion order.
    in_links: Vec<Vec<LinkId>>,
    /// Map (src, dst) -> link id for O(1) lookup.
    #[serde(skip)]
    pair_index: HashMap<(usize, usize), LinkId>,
}

impl Graph {
    /// Create a graph with `n_nodes` nodes and no links.
    pub fn new(name: impl Into<String>, n_nodes: usize) -> Self {
        Graph {
            name: name.into(),
            n_nodes,
            links: Vec::new(),
            out_links: vec![Vec::new(); n_nodes],
            in_links: vec![Vec::new(); n_nodes],
            pair_index: HashMap::new(),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of directed links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_nodes).map(NodeId)
    }

    /// Iterator over `(LinkId, &Link)` pairs.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i), l))
    }

    /// Access a link by id.
    pub fn link(&self, id: LinkId) -> Result<&Link, GraphError> {
        self.links.get(id.0).ok_or(GraphError::LinkOutOfRange {
            link: id.0,
            n_links: self.links.len(),
        })
    }

    /// Infallible link access for ids minted by this graph itself — ids
    /// obtained from [`Graph::out_links`], [`Graph::in_links`],
    /// [`Graph::links`], or [`Graph::link_between`]. For ids from untrusted
    /// input (deserialized routing tables, CLI arguments) use [`Graph::link`],
    /// which returns a typed error instead.
    ///
    /// INVARIANT: every LinkId stored in the adjacency structure indexes into
    /// `links` — `add_link` is the only writer and appends consistently.
    pub fn adj_link(&self, id: LinkId) -> &Link {
        debug_assert!(
            id.0 < self.links.len(),
            "foreign LinkId {id} passed to adj_link"
        );
        &self.links[id.0]
    }

    /// Mutable counterpart of [`Graph::adj_link`], same precondition.
    ///
    /// INVARIANT: the id was minted by this graph (see [`Graph::adj_link`]).
    pub fn adj_link_mut(&mut self, id: LinkId) -> &mut Link {
        debug_assert!(
            id.0 < self.links.len(),
            "foreign LinkId {id} passed to adj_link_mut"
        );
        &mut self.links[id.0]
    }

    /// Mutable access to a link's attributes (capacity, weight, delay).
    pub fn link_mut(&mut self, id: LinkId) -> Result<&mut Link, GraphError> {
        let n_links = self.links.len();
        self.links.get_mut(id.0).ok_or(GraphError::LinkOutOfRange {
            link: id.0,
            n_links,
        })
    }

    fn check_node(&self, n: NodeId) -> Result<(), GraphError> {
        if n.0 >= self.n_nodes {
            Err(GraphError::NodeOutOfRange {
                node: n.0,
                n_nodes: self.n_nodes,
            })
        } else {
            Ok(())
        }
    }

    /// Add a directed link. Returns its id.
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity_bps: f64,
        prop_delay_s: f64,
    ) -> Result<LinkId, GraphError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop { node: src.0 });
        }
        if !(capacity_bps.is_finite() && capacity_bps > 0.0) {
            return Err(GraphError::BadCapacity(capacity_bps));
        }
        if !(prop_delay_s.is_finite() && prop_delay_s >= 0.0) {
            return Err(GraphError::BadPropDelay(prop_delay_s));
        }
        if self.pair_index.contains_key(&(src.0, dst.0)) {
            return Err(GraphError::DuplicateLink {
                src: src.0,
                dst: dst.0,
            });
        }
        let id = LinkId(self.links.len());
        self.links.push(Link {
            src,
            dst,
            capacity_bps,
            prop_delay_s,
            weight: 1.0,
        });
        self.out_links[src.0].push(id);
        self.in_links[dst.0].push(id);
        self.pair_index.insert((src.0, dst.0), id);
        Ok(id)
    }

    /// Add a full-duplex connection: two directed links with identical
    /// attributes. Returns `(forward, backward)` ids.
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_bps: f64,
        prop_delay_s: f64,
    ) -> Result<(LinkId, LinkId), GraphError> {
        let f = self.add_link(a, b, capacity_bps, prop_delay_s)?;
        let r = self.add_link(b, a, capacity_bps, prop_delay_s)?;
        Ok((f, r))
    }

    /// Directed link id between `src` and `dst`, if one exists.
    pub fn link_between(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.pair_index.get(&(src.0, dst.0)).copied()
    }

    /// Outgoing links of `n`.
    pub fn out_links(&self, n: NodeId) -> &[LinkId] {
        &self.out_links[n.0]
    }

    /// Incoming links of `n`.
    pub fn in_links(&self, n: NodeId) -> &[LinkId] {
        &self.in_links[n.0]
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_links[n.0].len()
    }

    /// Successor nodes of `n` (one per outgoing link).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_links[n.0].iter().map(move |l| self.links[l.0].dst)
    }

    /// Set every link weight to its capacity's inverse (common IGP-style
    /// metric: faster links are cheaper).
    pub fn set_inverse_capacity_weights(&mut self) {
        for l in &mut self.links {
            l.weight = 1.0 / l.capacity_bps;
        }
    }

    /// Set every link weight to 1 (hop-count routing).
    pub fn set_unit_weights(&mut self) {
        for l in &mut self.links {
            l.weight = 1.0;
        }
    }

    /// Rebuild the internal `(src, dst) -> link` index. Must be called after
    /// deserializing a graph (the index is not serialized).
    pub fn rebuild_index(&mut self) {
        self.pair_index = self
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| ((l.src.0, l.dst.0), LinkId(i)))
            .collect();
    }

    /// Total capacity leaving node `n`, in bits/s.
    pub fn egress_capacity(&self, n: NodeId) -> f64 {
        self.out_links[n.0]
            .iter()
            .map(|l| self.links[l.0].capacity_bps)
            .sum()
    }

    /// Render as Graphviz DOT (duplex link pairs collapsed to one undirected
    /// edge, labeled with capacity in kbps). Handy for eyeballing generated
    /// topologies: `dot -Tsvg`.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        // lint: allow(panic, reason = "fmt::Write to String never errors")
        writeln!(out, "graph \"{}\" {{", self.name).expect("write to String");
        // lint: allow(panic, reason = "fmt::Write to String never errors")
        writeln!(out, "  layout=neato; node [shape=circle];").expect("write");
        let mut done = std::collections::HashSet::new();
        for (_, l) in self.links() {
            let key = (l.src.0.min(l.dst.0), l.src.0.max(l.dst.0));
            if self.link_between(l.dst, l.src).is_some() {
                if !done.insert(key) {
                    continue;
                }
                writeln!(
                    out,
                    "  n{} -- n{} [label=\"{:.0}k\"];",
                    key.0,
                    key.1,
                    l.capacity_bps / 1e3
                )
                // lint: allow(panic, reason = "fmt::Write to String never errors")
                .expect("write");
            } else {
                writeln!(
                    out,
                    "  n{} -- n{} [dir=forward, label=\"{:.0}k\"];",
                    l.src.0,
                    l.dst.0,
                    l.capacity_bps / 1e3
                )
                // lint: allow(panic, reason = "fmt::Write to String never errors")
                .expect("write");
            }
        }
        out.push_str("}\n");
        out
    }

    /// All ordered node pairs `(s, d)` with `s != d`; the canonical iteration
    /// order of traffic matrices and routing schemes.
    pub fn node_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        let n = self.n_nodes;
        (0..n).flat_map(move |s| {
            (0..n)
                .filter(move |d| *d != s)
                .map(move |d| (NodeId(s), NodeId(d)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new("tri", 3);
        g.add_duplex(NodeId(0), NodeId(1), 1e6, 1e-3).unwrap();
        g.add_duplex(NodeId(1), NodeId(2), 2e6, 1e-3).unwrap();
        g.add_duplex(NodeId(2), NodeId(0), 3e6, 1e-3).unwrap();
        g
    }

    #[test]
    fn nodes_and_links_counted() {
        let g = triangle();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_links(), 6);
        assert_eq!(g.nodes().count(), 3);
        assert_eq!(g.links().count(), 6);
    }

    #[test]
    fn duplex_creates_both_directions() {
        let g = triangle();
        let f = g.link_between(NodeId(0), NodeId(1)).unwrap();
        let r = g.link_between(NodeId(1), NodeId(0)).unwrap();
        assert_ne!(f, r);
        assert_eq!(g.link(f).unwrap().src, NodeId(0));
        assert_eq!(g.link(r).unwrap().src, NodeId(1));
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new("g", 2);
        assert_eq!(
            g.add_link(NodeId(0), NodeId(0), 1e6, 0.0),
            Err(GraphError::SelfLoop { node: 0 })
        );
    }

    #[test]
    fn duplicate_link_rejected() {
        let mut g = Graph::new("g", 2);
        g.add_link(NodeId(0), NodeId(1), 1e6, 0.0).unwrap();
        assert_eq!(
            g.add_link(NodeId(0), NodeId(1), 2e6, 0.0),
            Err(GraphError::DuplicateLink { src: 0, dst: 1 })
        );
    }

    #[test]
    fn bad_capacity_rejected() {
        let mut g = Graph::new("g", 2);
        assert!(matches!(
            g.add_link(NodeId(0), NodeId(1), 0.0, 0.0),
            Err(GraphError::BadCapacity(_))
        ));
        assert!(matches!(
            g.add_link(NodeId(0), NodeId(1), f64::NAN, 0.0),
            Err(GraphError::BadCapacity(_))
        ));
        assert!(matches!(
            g.add_link(NodeId(0), NodeId(1), f64::INFINITY, 0.0),
            Err(GraphError::BadCapacity(_))
        ));
    }

    #[test]
    fn bad_prop_delay_rejected() {
        let mut g = Graph::new("g", 2);
        assert!(matches!(
            g.add_link(NodeId(0), NodeId(1), 1e6, -1.0),
            Err(GraphError::BadPropDelay(_))
        ));
    }

    #[test]
    fn node_out_of_range_rejected() {
        let mut g = Graph::new("g", 2);
        assert!(matches!(
            g.add_link(NodeId(0), NodeId(5), 1e6, 0.0),
            Err(GraphError::NodeOutOfRange {
                node: 5,
                n_nodes: 2
            })
        ));
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = triangle();
        for (id, l) in g.links() {
            assert!(g.out_links(l.src).contains(&id));
            assert!(g.in_links(l.dst).contains(&id));
        }
        for n in g.nodes() {
            assert_eq!(g.out_degree(n), 2);
            assert_eq!(g.successors(n).count(), 2);
        }
    }

    #[test]
    fn node_pairs_enumerates_all_ordered_pairs() {
        let g = triangle();
        let pairs: Vec<_> = g.node_pairs().collect();
        assert_eq!(pairs.len(), 6);
        assert!(pairs.contains(&(NodeId(0), NodeId(2))));
        assert!(!pairs.iter().any(|(s, d)| s == d));
    }

    #[test]
    fn weight_helpers() {
        let mut g = triangle();
        g.set_inverse_capacity_weights();
        let l = g.link_between(NodeId(0), NodeId(1)).unwrap();
        assert!((g.link(l).unwrap().weight - 1e-6).abs() < 1e-15);
        g.set_unit_weights();
        assert_eq!(g.link(l).unwrap().weight, 1.0);
    }

    #[test]
    fn serde_roundtrip_and_reindex() {
        let g = triangle();
        let s = serde_json::to_string(&g).unwrap();
        let mut g2: Graph = serde_json::from_str(&s).unwrap();
        g2.rebuild_index();
        assert_eq!(g2.n_nodes(), 3);
        assert_eq!(g2.n_links(), 6);
        assert_eq!(
            g2.link_between(NodeId(2), NodeId(0)),
            g.link_between(NodeId(2), NodeId(0))
        );
    }

    #[test]
    fn dot_export_collapses_duplex_pairs() {
        let g = triangle();
        let dot = g.to_dot();
        assert!(dot.starts_with("graph \"tri\""));
        // 3 duplex pairs -> 3 undirected edges
        assert_eq!(dot.matches(" -- ").count(), 3);
        assert!(dot.contains("n0 -- n1"));
        assert!(!dot.contains("dir=forward"));
        let mut g = Graph::new("oneway", 2);
        g.add_link(NodeId(0), NodeId(1), 1e6, 0.0).unwrap();
        assert!(g.to_dot().contains("dir=forward"));
    }

    #[test]
    fn egress_capacity_sums_outgoing() {
        let g = triangle();
        // node 0 has links to 1 (1e6) and 2 (3e6)
        assert!((g.egress_capacity(NodeId(0)) - 4e6).abs() < 1.0);
    }
}
