//! Random topology generators.
//!
//! The paper's training set includes a 50-node synthetically-generated
//! topology; [`synthetic`] is the entry point used by the dataset pipeline.
//! Several generator families are provided so experiments can vary the
//! structural distribution (the paper's demo stresses "topologies of variable
//! size up to 50 nodes").

use crate::graph::{Graph, NodeId};
use crate::topology::{DEFAULT_CAPACITY_BPS, DEFAULT_PROP_DELAY_S};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// Undirected edge set builder used by all generators; dedups and forbids
/// self-loops. Ordered so link ids are deterministic without compensating
/// sorts at every iteration site.
#[derive(Default)]
struct EdgeSet {
    edges: BTreeSet<(usize, usize)>,
}

impl EdgeSet {
    fn insert(&mut self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        self.edges.insert((a.min(b), a.max(b)))
    }

    fn into_graph(self, name: &str, n: usize) -> Graph {
        let mut g = Graph::new(name, n);
        for (a, b) in self.edges {
            g.add_duplex(
                NodeId(a),
                NodeId(b),
                DEFAULT_CAPACITY_BPS,
                DEFAULT_PROP_DELAY_S,
            )
            // lint: allow(panic, reason = "EdgeSet normalizes pairs: no self-loops or duplicates by construction")
            .expect("EdgeSet guarantees validity");
        }
        g
    }
}

/// Connect disconnected components by adding random inter-component edges
/// until one (undirected) component remains.
fn repair_connectivity<R: Rng>(edges: &mut EdgeSet, n: usize, rng: &mut R) {
    // Union-find over nodes.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    let edge_list: Vec<_> = edges.edges.iter().copied().collect();
    for (a, b) in edge_list {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    loop {
        let mut roots: Vec<usize> = (0..n).map(|x| find(&mut parent, x)).collect();
        roots.sort_unstable();
        roots.dedup();
        if roots.len() <= 1 {
            break;
        }
        // Pick one node from each of two random components and join them.
        let ra = roots[rng.gen_range(0..roots.len())];
        let rb = loop {
            let r = roots[rng.gen_range(0..roots.len())];
            if r != ra {
                break r;
            }
        };
        let members_a: Vec<usize> = (0..n).filter(|&x| find(&mut parent, x) == ra).collect();
        let members_b: Vec<usize> = (0..n).filter(|&x| find(&mut parent, x) == rb).collect();
        // lint: allow(panic, reason = "every union-find root has at least its own member")
        let a = *members_a.choose(rng).expect("non-empty component");
        // lint: allow(panic, reason = "every union-find root has at least its own member")
        let b = *members_b.choose(rng).expect("non-empty component");
        edges.insert(a, b);
        let (fa, fb) = (find(&mut parent, a), find(&mut parent, b));
        parent[fa] = fb;
    }
}

/// Erdős–Rényi G(n, p) with connectivity repair.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(n >= 2, "need at least 2 nodes");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut es = EdgeSet::default();
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen::<f64>() < p {
                es.insert(a, b);
            }
        }
    }
    repair_connectivity(&mut es, n, rng);
    es.into_graph(&format!("ER-{n}"), n)
}

/// Barabási–Albert preferential attachment: start from a clique of `m + 1`
/// nodes; every new node attaches to `m` distinct existing nodes with
/// probability proportional to degree.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1, "m must be >= 1");
    assert!(n > m, "need n > m");
    let mut es = EdgeSet::default();
    // Seed clique.
    for a in 0..=m {
        for b in (a + 1)..=m {
            es.insert(a, b);
        }
    }
    // Repeated-nodes trick: each edge endpoint appears once per degree.
    let mut repeated: Vec<usize> = Vec::new();
    for &(a, b) in &es.edges {
        repeated.push(a);
        repeated.push(b);
    }
    // Ascending pool order: keeps seeded outputs byte-stable across the
    // BTreeSet migration (the pool used to be sorted after hash iteration).
    repeated.sort_unstable();
    for v in (m + 1)..n {
        let mut targets = BTreeSet::new();
        while targets.len() < m {
            let t = repeated[rng.gen_range(0..repeated.len())];
            if t != v {
                targets.insert(t);
            }
        }
        for t in targets {
            es.insert(v, t);
            repeated.push(v);
            repeated.push(t);
        }
    }
    es.into_graph(&format!("BA-{n}"), n)
}

/// Waxman random geometric graph on the unit square: nodes get uniform
/// coordinates; edge probability `alpha * exp(-dist / (beta * sqrt(2)))`.
/// Propagation delays are set proportional to Euclidean distance
/// (`dist * delay_per_unit` seconds). Connectivity is repaired.
pub fn waxman<R: Rng>(n: usize, alpha: f64, beta: f64, delay_per_unit: f64, rng: &mut R) -> Graph {
    assert!(n >= 2);
    let pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let dist = |a: usize, b: usize| -> f64 {
        let dx = pos[a].0 - pos[b].0;
        let dy = pos[a].1 - pos[b].1;
        (dx * dx + dy * dy).sqrt()
    };
    let l = std::f64::consts::SQRT_2;
    let mut es = EdgeSet::default();
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen::<f64>() < alpha * (-dist(a, b) / (beta * l)).exp() {
                es.insert(a, b);
            }
        }
    }
    repair_connectivity(&mut es, n, rng);
    let mut g = es.into_graph(&format!("Waxman-{n}"), n);
    let ids: Vec<_> = g
        .links()
        .map(|(id, l)| (id, dist(l.src.0, l.dst.0)))
        .collect();
    for (id, d) in ids {
        g.adj_link_mut(id).prop_delay_s = d * delay_per_unit;
    }
    g
}

/// Bidirectional ring of `n` nodes.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs >= 3 nodes");
    let mut es = EdgeSet::default();
    for i in 0..n {
        es.insert(i, (i + 1) % n);
    }
    es.into_graph(&format!("Ring-{n}"), n)
}

/// `w x h` grid (4-neighborhood).
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(w >= 1 && h >= 1 && w * h >= 2);
    let idx = |x: usize, y: usize| y * w + x;
    let mut es = EdgeSet::default();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                es.insert(idx(x, y), idx(x + 1, y));
            }
            if y + 1 < h {
                es.insert(idx(x, y), idx(x, y + 1));
            }
        }
    }
    es.into_graph(&format!("Grid-{w}x{h}"), w * h)
}

/// Full mesh over `n` nodes.
pub fn full_mesh(n: usize) -> Graph {
    assert!(n >= 2);
    let mut es = EdgeSet::default();
    for a in 0..n {
        for b in (a + 1)..n {
            es.insert(a, b);
        }
    }
    es.into_graph(&format!("Mesh-{n}"), n)
}

/// The synthetic topology family used for the paper's 50-node training
/// topology: scale-free preferential attachment with `m = 2` (average degree
/// ~4, matching backbone-like sparsity), named `Synth-<n>`.
pub fn synthetic<R: Rng>(n: usize, rng: &mut R) -> Graph {
    let mut g = barabasi_albert(n, 2, rng);
    g.name = format!("Synth-{n}");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_strongly_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_connected_and_right_size() {
        let mut rng = StdRng::seed_from_u64(42);
        for &n in &[5usize, 20, 50] {
            let g = erdos_renyi(n, 0.1, &mut rng);
            assert_eq!(g.n_nodes(), n);
            assert!(
                is_strongly_connected(&g),
                "ER-{n} must be repaired to connected"
            );
        }
    }

    #[test]
    fn er_p1_is_full_mesh() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(6, 1.0, &mut rng);
        assert_eq!(g.n_links(), 6 * 5);
    }

    #[test]
    fn ba_edge_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 30;
        let m = 2;
        let g = barabasi_albert(n, m, &mut rng);
        // clique(m+1)=m(m+1)/2 undirected + (n-m-1)*m new
        let undirected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.n_links(), undirected * 2);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn ba_has_hubs() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = barabasi_albert(100, 2, &mut rng);
        let max_deg = g.nodes().map(|n| g.out_degree(n)).max().unwrap();
        // Preferential attachment should create at least one hub well above
        // the average degree (~4).
        assert!(max_deg >= 8, "expected a hub, max degree was {max_deg}");
    }

    #[test]
    fn waxman_connected_with_distance_delays() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = waxman(25, 0.6, 0.3, 1e-3, &mut rng);
        assert!(is_strongly_connected(&g));
        assert!(g
            .links()
            .all(|(_, l)| l.prop_delay_s >= 0.0 && l.prop_delay_s < 2e-3));
        // at least one positive-length link
        assert!(g.links().any(|(_, l)| l.prop_delay_s > 0.0));
    }

    #[test]
    fn ring_and_grid_shapes() {
        let g = ring(8);
        assert_eq!(g.n_links(), 16);
        assert!(g.nodes().all(|n| g.out_degree(n) == 2));
        let g = grid(3, 4);
        assert_eq!(g.n_nodes(), 12);
        // edges: 3 rows of horizontal? horizontal: (3-1)*4=8, vertical: 3*(4-1)=9 => 17
        assert_eq!(g.n_links(), 34);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn synthetic50_matches_paper_scale() {
        let mut rng = StdRng::seed_from_u64(2019);
        let g = synthetic(50, &mut rng);
        assert_eq!(g.n_nodes(), 50);
        assert_eq!(g.name, "Synth-50");
        assert!(is_strongly_connected(&g));
        let avg_deg = g.nodes().map(|n| g.out_degree(n)).sum::<usize>() as f64 / g.n_nodes() as f64;
        assert!((3.0..=5.0).contains(&avg_deg), "avg degree {avg_deg}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g1 = synthetic(20, &mut StdRng::seed_from_u64(5));
        let g2 = synthetic(20, &mut StdRng::seed_from_u64(5));
        let e1: Vec<_> = g1.links().map(|(_, l)| (l.src.0, l.dst.0)).collect();
        let e2: Vec<_> = g2.links().map(|(_, l)| (l.src.0, l.dst.0)).collect();
        assert_eq!(e1, e2);
    }
}
