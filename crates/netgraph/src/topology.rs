//! Topology zoo: the real-world topologies used by the paper, plus capacity
//! assignment schemes.
//!
//! The paper trains on the 14-node NSFNET and a 50-node synthetic topology
//! (see [`crate::generate`]) and evaluates generalization on the unseen
//! 24-node Geant2. We also ship the 17-node GBN backbone, used by follow-up
//! RouteNet work, as an extra held-out topology for extension experiments.
//!
//! NSFNET uses the canonical 14-node / 21-edge T1 backbone edge list. The
//! Geant2 and GBN graphs match the node/link counts of the datasets used in
//! the paper (24 nodes / 37 full-duplex links and 17 nodes / 26 links); the
//! exact adjacency is a faithful reconstruction at the same size and density,
//! which is what the generalization experiments depend on (the model never
//! sees these graphs during training).

use crate::graph::{Graph, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Default link capacity in bits/s.
///
/// The public RouteNet/KDN datasets use small capacities (10/40 kbps) with
/// 1000-bit average packets so that queues operate at interesting loads with
/// few packets; we keep the same convention.
pub const DEFAULT_CAPACITY_BPS: f64 = 10_000.0;

/// Default propagation delay in seconds.
pub const DEFAULT_PROP_DELAY_S: f64 = 0.0;

fn from_edges(name: &str, n: usize, edges: &[(usize, usize)]) -> Graph {
    let mut g = Graph::new(name, n);
    for &(a, b) in edges {
        g.add_duplex(
            NodeId(a),
            NodeId(b),
            DEFAULT_CAPACITY_BPS,
            DEFAULT_PROP_DELAY_S,
        )
        // lint: allow(panic, reason = "edge lists are compile-time constants validated by tests")
        .expect("topology zoo edge lists are valid");
    }
    g
}

/// The classic 14-node, 21-edge NSFNET T1 backbone.
pub fn nsfnet() -> Graph {
    from_edges(
        "NSFNET",
        14,
        &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 7),
            (2, 5),
            (3, 4),
            (3, 8),
            (4, 5),
            (4, 6),
            (5, 12),
            (5, 13),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (9, 10),
            (9, 12),
            (10, 11),
            (10, 13),
            (11, 12),
        ],
    )
}

/// A 24-node, 37-edge Geant2-scale European backbone.
pub fn geant2() -> Graph {
    from_edges(
        "Geant2",
        24,
        &[
            (0, 1),
            (0, 2),
            (1, 3),
            (1, 6),
            (1, 9),
            (2, 3),
            (2, 4),
            (3, 5),
            (3, 6),
            (4, 7),
            (5, 8),
            (6, 8),
            (6, 9),
            (7, 8),
            (7, 11),
            (8, 11),
            (8, 12),
            (8, 17),
            (8, 18),
            (8, 20),
            (9, 10),
            (9, 12),
            (9, 13),
            (10, 13),
            (11, 14),
            (11, 20),
            (12, 13),
            (12, 19),
            (12, 21),
            (13, 16),
            (14, 15),
            (15, 16),
            (16, 17),
            (16, 21),
            (16, 22),
            (18, 21),
            (19, 23),
        ],
    )
}

/// A 17-node, 26-edge German-backbone-scale topology (GBN).
pub fn gbn() -> Graph {
    from_edges(
        "GBN",
        17,
        &[
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 4),
            (2, 7),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
            (5, 7),
            (6, 8),
            (6, 11),
            (7, 8),
            (7, 9),
            (8, 10),
            (9, 10),
            (9, 11),
            (10, 12),
            (11, 12),
            (11, 13),
            (12, 14),
            (13, 14),
            (13, 15),
            (14, 16),
            (15, 16),
        ],
    )
}

/// The 11-node, 14-edge Abilene (Internet2) backbone: Seattle, Sunnyvale,
/// Los Angeles, Denver, Kansas City, Houston, Chicago, Indianapolis,
/// Atlanta, Washington DC, New York — a small real topology handy for
/// quick extension experiments.
pub fn abilene() -> Graph {
    // 0 SEA, 1 SNV, 2 LA, 3 DEN, 4 KSC, 5 HOU, 6 CHI, 7 IPLS, 8 ATL,
    // 9 WDC, 10 NYC
    from_edges(
        "Abilene",
        11,
        &[
            (0, 1),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 5),
            (3, 4),
            (4, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (6, 10),
            (7, 8),
            (8, 9),
            (9, 10),
        ],
    )
}

/// How link capacities are assigned to a topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CapacityScheme {
    /// Every link gets the same capacity (bits/s).
    Uniform(f64),
    /// Each *duplex pair* draws uniformly from this set; both directions of a
    /// connection share the drawn value (as in the KDN datasets).
    Choice(Vec<f64>),
    /// Capacity proportional to `base * max(deg(src), deg(dst))`, rounding to
    /// the nearest multiple of `base`. Models fatter links at hubs.
    DegreeProportional {
        /// Capacity unit per degree.
        base: f64,
    },
}

impl CapacityScheme {
    /// The KDN dataset convention: capacities drawn from {10, 40} kbps.
    pub fn kdn_default() -> Self {
        CapacityScheme::Choice(vec![10_000.0, 40_000.0])
    }
}

/// Assign capacities to every link of `g` under `scheme`.
///
/// For [`CapacityScheme::Choice`], the two directions of a duplex connection
/// receive the same capacity (link `a→b` and `b→a` are assigned together;
/// the pair is keyed on `(min, max)` node ids).
pub fn assign_capacities<R: Rng>(g: &mut Graph, scheme: &CapacityScheme, rng: &mut R) {
    match scheme {
        CapacityScheme::Uniform(c) => {
            let ids: Vec<_> = g.links().map(|(id, _)| id).collect();
            for id in ids {
                g.adj_link_mut(id).capacity_bps = *c;
            }
        }
        CapacityScheme::Choice(set) => {
            assert!(!set.is_empty(), "capacity choice set must be non-empty");
            // Ordered map: capacity assignment must stay deterministic even
            // if this is ever iterated (determinism rule, RN101).
            use std::collections::BTreeMap;
            let mut per_pair: BTreeMap<(usize, usize), f64> = BTreeMap::new();
            let ids: Vec<_> = g
                .links()
                .map(|(id, l)| (id, (l.src.0.min(l.dst.0), l.src.0.max(l.dst.0))))
                .collect();
            for (id, key) in ids {
                let c = *per_pair
                    .entry(key)
                    .or_insert_with(|| set[rng.gen_range(0..set.len())]);
                g.adj_link_mut(id).capacity_bps = c;
            }
        }
        CapacityScheme::DegreeProportional { base } => {
            let ids: Vec<_> = g
                .links()
                .map(|(id, l)| {
                    let d = g.out_degree(l.src).max(g.out_degree(l.dst)) as f64;
                    (id, base * d)
                })
                .collect();
            for (id, c) in ids {
                g.adj_link_mut(id).capacity_bps = c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{diameter_hops, is_strongly_connected};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nsfnet_shape() {
        let g = nsfnet();
        assert_eq!(g.n_nodes(), 14);
        assert_eq!(g.n_links(), 42); // 21 duplex pairs
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn geant2_shape() {
        let g = geant2();
        assert_eq!(g.n_nodes(), 24);
        assert_eq!(g.n_links(), 74); // 37 duplex pairs
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn gbn_shape() {
        let g = gbn();
        assert_eq!(g.n_nodes(), 17);
        assert_eq!(g.n_links(), 52); // 26 duplex pairs
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn abilene_shape() {
        let g = abilene();
        assert_eq!(g.n_nodes(), 11);
        assert_eq!(g.n_links(), 28); // 14 duplex pairs
        assert!(is_strongly_connected(&g));
        assert!(diameter_hops(&g).unwrap() <= 5);
    }

    #[test]
    fn zoo_diameters_are_backbone_like() {
        // Real backbones have small diameters; sanity guard against typos in
        // the edge lists silently disconnecting or stretching the graphs.
        assert!(diameter_hops(&nsfnet()).unwrap() <= 5);
        assert!(diameter_hops(&geant2()).unwrap() <= 6);
        assert!(diameter_hops(&gbn()).unwrap() <= 8);
    }

    #[test]
    fn uniform_capacities() {
        let mut g = nsfnet();
        let mut rng = StdRng::seed_from_u64(1);
        assign_capacities(&mut g, &CapacityScheme::Uniform(5e4), &mut rng);
        assert!(g.links().all(|(_, l)| l.capacity_bps == 5e4));
    }

    #[test]
    fn choice_capacities_are_symmetric_per_pair() {
        let mut g = geant2();
        let mut rng = StdRng::seed_from_u64(7);
        assign_capacities(&mut g, &CapacityScheme::kdn_default(), &mut rng);
        for (_, l) in g.links() {
            assert!(l.capacity_bps == 10_000.0 || l.capacity_bps == 40_000.0);
            let rev = g.link_between(l.dst, l.src).expect("duplex");
            assert_eq!(g.link(rev).unwrap().capacity_bps, l.capacity_bps);
        }
        // With 37 pairs and seed 7 we expect both values to occur.
        let caps: std::collections::HashSet<u64> =
            g.links().map(|(_, l)| l.capacity_bps as u64).collect();
        assert_eq!(caps.len(), 2);
    }

    #[test]
    fn degree_proportional_capacities() {
        let mut g = nsfnet();
        let mut rng = StdRng::seed_from_u64(3);
        assign_capacities(
            &mut g,
            &CapacityScheme::DegreeProportional { base: 1e4 },
            &mut rng,
        );
        for (_, l) in g.links() {
            let d = g.out_degree(l.src).max(g.out_degree(l.dst)) as f64;
            assert_eq!(l.capacity_bps, 1e4 * d);
        }
    }
}
