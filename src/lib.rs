//! # routenet-suite
//!
//! Umbrella crate of the RouteNet generalization suite: re-exports the
//! member crates under one roof and hosts the repository-level examples
//! (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! Start with [`core`] (the RouteNet model) and [`dataset`] (labeled-sample
//! generation); see the repository README for the tour.
//!
//! ```
//! use routenet_suite::core::prelude::*;
//! use routenet_suite::netgraph::prelude::*;
//!
//! let g = topology::nsfnet();
//! assert_eq!(g.n_nodes(), 14);
//! let model = RouteNet::new(RouteNetConfig::default());
//! assert!(model.n_parameters() > 0);
//! ```

#![warn(missing_docs)]

pub use routenet_core as core;
pub use routenet_dataset as dataset;
pub use routenet_netgraph as netgraph;
pub use routenet_nn as nn;
pub use routenet_simnet as simnet;
