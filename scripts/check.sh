#!/usr/bin/env bash
# Single CI gate for the RouteNet workspace:
#   formatting -> clippy (deny warnings) -> static analysis -> build -> tests
#
# Usage: scripts/check.sh [--quick]
#   --quick   skip the release build and run tests in debug only
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
    QUICK=1
elif [[ -n "${1:-}" ]]; then
    echo "usage: scripts/check.sh [--quick]" >&2
    exit 2
fi

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "routenet-analyzer --workspace"
cargo run -q -p routenet-analyzer -- --workspace --json target/analyzer-report.json

if [[ "$QUICK" -eq 0 ]]; then
    step "cargo build --release"
    cargo build --release
fi

step "cargo test --workspace"
cargo test --workspace -q

# Resume-determinism smoke test: training 2 epochs, checkpointing, and
# resuming for 2 more must be bit-identical to training 4 epochs straight.
# Guards the crash-safety contract (see DESIGN.md "Failure model & recovery").
step "resume-determinism smoke test"
cargo test -q --test resume_determinism

step "all checks passed"
