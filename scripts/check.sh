#!/usr/bin/env bash
# Single CI gate for the RouteNet workspace:
#   formatting -> clippy (deny warnings) -> static analysis -> build -> tests
#
# Usage: scripts/check.sh [--quick]
#   --quick   analyzer-only loop: formatting, the analyzer gate, and the
#             analyzer's own test suite — no clippy, no release build, no
#             workspace tests. For iterating on rules and fixtures.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
    QUICK=1
elif [[ -n "${1:-}" ]]; then
    echo "usage: scripts/check.sh [--quick]" >&2
    exit 2
fi

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

if [[ "$QUICK" -eq 0 ]]; then
    step "cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

# The analyzer gate diffs against the committed baseline (analyzer-baseline.txt):
# new deny-level findings fail, and fixed findings also fail until the baseline
# is shrunk — the ratchet only ever tightens. hot-loop-alloc and hot-loop-lock
# are escalated to deny here so CI blocks new allocation churn and per-iteration
# lock traffic in the kernels even though the rules default to warn for local
# runs. In --quick mode only git-changed files are scanned (the call graph is
# still workspace-wide, so transitive RN2xx/RN4xx evidence is unaffected, and
# the changed set is expanded with transitive caller files).
#
# The full pass runs under the routenet-obs time-gate span timer with a
# wall-clock budget: the gate must stay fast enough for the pre-commit loop
# as rule families grow, so a rule that regresses the scan past the budget
# fails CI with a timing diagnostic instead of silently taxing every run.
# The budget excludes compilation (both binaries are built first) and is
# overridable for slow CI machines via ANALYZER_BUDGET_S.
step "routenet-analyzer --workspace (baseline ratchet)"
mkdir -p target
CHANGED_ONLY=()
if [[ "$QUICK" -eq 1 ]]; then
    CHANGED_ONLY=(--changed-only)
fi
cargo build -q -p routenet-analyzer -p routenet-obs --bins
./target/debug/time-gate --budget-s "${ANALYZER_BUDGET_S:-20}" --span analyzer-gate -- \
    ./target/debug/routenet-analyzer --workspace \
    "${CHANGED_ONLY[@]}" \
    --deny hot-loop-alloc \
    --deny hot-loop-lock \
    --baseline analyzer-baseline.txt \
    --json target/analyzer-report.json

if [[ "$QUICK" -eq 1 ]]; then
    step "cargo test -p routenet-analyzer (rules + fixtures + golden)"
    cargo test -q -p routenet-analyzer
    step "quick checks passed"
    exit 0
fi

step "cargo build --release"
cargo build --release

step "cargo test --workspace"
cargo test --workspace -q

# Resume-determinism smoke test: training 2 epochs, checkpointing, and
# resuming for 2 more must be bit-identical to training 4 epochs straight.
# Guards the crash-safety contract (see DESIGN.md "Failure model & recovery").
step "resume-determinism smoke test"
cargo test -q --test resume_determinism

# Chaos smoke test: replay the pinned fault-schedule corpus through the IO
# seam (see DESIGN.md "Fault model & injection"). Under every schedule the
# run must complete or fail with a typed error plus a loadable checkpoint,
# transient faults must be absorbed by retry, and telemetry faults must
# leave training byte-identical. The analyzer gate above already enforces
# the seam boundary itself (RN301 io-seam, deny by default).
step "chaos smoke test (fault-injection corpus)"
cargo test -q --test chaos

# Telemetry smoke test: a tiny end-to-end training run and a single
# simulation must each leave a parseable, gapless telemetry JSONL with the
# expected event kinds (see DESIGN.md "Observability"). validate-telemetry
# checks strict seq ordering and required kinds; a regression in any sink,
# event type, or bin wiring fails here before it can silently blind a run.
step "telemetry smoke test"
TELDIR="$(mktemp -d)"
trap 'rm -rf "$TELDIR"' EXIT
cargo run -q --release -p routenet-dataset --bin gen-dataset -- \
    --samples 4 --seed 7 --duration 60 --out "$TELDIR/train.jsonl" >/dev/null
cargo run -q --release -p routenet-bench --bin train-model -- \
    --train "$TELDIR/train.jsonl" --lenient --epochs 2 \
    --out "$TELDIR/model.json" >/dev/null
cargo run -q --release -p routenet-obs --bin validate-telemetry -- \
    "$TELDIR/model.json.telemetry.jsonl" \
    --require RunStart,DatasetLoad,Epoch,RunEnd
cargo run -q --release -p routenet-bench --bin simulate -- \
    --topology nsfnet --duration 40 --warmup 4 --seed 7 \
    --out "$TELDIR/sim.telemetry.jsonl" >/dev/null
cargo run -q --release -p routenet-obs --bin validate-telemetry -- \
    "$TELDIR/sim.telemetry.jsonl" \
    --require RunStart,SimRun,RunEnd
# Disabled telemetry must stay within noise of an enabled handle (the
# wall-clock comparison is #[ignore]d from the default suite; see the test).
cargo test -q --release -p routenet-simnet --test telemetry_overhead \
    -- --ignored

# Batched-kernel equivalence smoke test: training on the batched CSR path
# and on the sequential per-sample path (--sequential) must produce
# byte-identical model artifacts (see DESIGN.md "Batched execution & memory
# arenas" — segment order in sample order is the determinism contract), at
# every worker count. The sweep is capped at the machine's core count:
# running 4 workers on a 2-core box measures oversubscription, not scaling,
# so those points are skipped with a note rather than reported as data.
step "batched vs sequential equivalence smoke test"
cargo run -q --release -p routenet-bench --bin train-model -- \
    --train "$TELDIR/train.jsonl" --lenient --epochs 2 --sequential \
    --out "$TELDIR/model-sequential.json" --no-telemetry >/dev/null
CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
for THREADS in 1 2 4; do
    if [[ "$THREADS" -gt "$CORES" ]]; then
        echo "note: skipping ${THREADS}-thread batched smoke (only ${CORES} core(s) available)"
        continue
    fi
    cargo run -q --release -p routenet-bench --bin train-model -- \
        --train "$TELDIR/train.jsonl" --lenient --epochs 2 --threads "$THREADS" \
        --out "$TELDIR/model-batched-t$THREADS.json" --no-telemetry >/dev/null
    cmp "$TELDIR/model-batched-t$THREADS.json" "$TELDIR/model-sequential.json"
done

# Serving smoke test: start the micro-batching daemon on an ephemeral
# loopback port with the model trained above, fire the training scenarios at
# it from concurrent pipelined connections, and require the served responses
# to be BYTE-identical to the offline predict path serialized through the
# same wire encoder (see DESIGN.md "Serving" — micro-batch composition must
# never perturb answers). The daemon's telemetry must carry the Serve digest.
step "serve smoke test (daemon vs offline byte-equivalence)"
cargo run -q --release -p routenet-serve --bin routenet-serve -- \
    --model "$TELDIR/model.json" --listen 127.0.0.1:0 \
    --port-file "$TELDIR/serve.port" --max-batch 16 --batch-window-us 2000 \
    --telemetry "$TELDIR/serve.telemetry.jsonl" 2>"$TELDIR/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [[ -f "$TELDIR/serve.port" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$TELDIR/serve.log" >&2; exit 1; }
    sleep 0.1
done
[[ -f "$TELDIR/serve.port" ]] || { echo "daemon never bound" >&2; cat "$TELDIR/serve.log" >&2; exit 1; }
SERVE_PORT="$(cat "$TELDIR/serve.port")"
cargo run -q --release -p routenet-bench --bin serve-loadgen -- \
    --connect "127.0.0.1:$SERVE_PORT" --data "$TELDIR/train.jsonl" \
    --repeat 6 --concurrency 4 --window 4 \
    --out "$TELDIR/served.jsonl" --shutdown
wait "$SERVE_PID" || { echo "daemon exited nonzero" >&2; cat "$TELDIR/serve.log" >&2; exit 1; }
cargo run -q --release -p routenet-bench --bin serve-loadgen -- \
    --offline --model "$TELDIR/model.json" --data "$TELDIR/train.jsonl" \
    --repeat 6 --out "$TELDIR/offline.jsonl"
cmp "$TELDIR/served.jsonl" "$TELDIR/offline.jsonl"
cargo run -q --release -p routenet-obs --bin validate-telemetry -- \
    "$TELDIR/serve.telemetry.jsonl" \
    --require RunStart,Serve,RunEnd

step "all checks passed"
