#!/usr/bin/env bash
# Single CI gate for the RouteNet workspace:
#   formatting -> clippy (deny warnings) -> static analysis -> build -> tests
#
# Usage: scripts/check.sh [--quick]
#   --quick   analyzer-only loop: formatting, the analyzer gate, and the
#             analyzer's own test suite — no clippy, no release build, no
#             workspace tests. For iterating on rules and fixtures.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
    QUICK=1
elif [[ -n "${1:-}" ]]; then
    echo "usage: scripts/check.sh [--quick]" >&2
    exit 2
fi

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

if [[ "$QUICK" -eq 0 ]]; then
    step "cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

# The analyzer gate diffs against the committed baseline (analyzer-baseline.txt):
# new deny-level findings fail, and fixed findings also fail until the baseline
# is shrunk — the ratchet only ever tightens. hot-loop-alloc is escalated to
# deny here so CI blocks new allocation churn in the kernels even though the
# rule defaults to warn for local runs.
step "routenet-analyzer --workspace (baseline ratchet)"
mkdir -p target
cargo run -q -p routenet-analyzer -- --workspace \
    --deny hot-loop-alloc \
    --baseline analyzer-baseline.txt \
    --json target/analyzer-report.json

if [[ "$QUICK" -eq 1 ]]; then
    step "cargo test -p routenet-analyzer (rules + fixtures + golden)"
    cargo test -q -p routenet-analyzer
    step "quick checks passed"
    exit 0
fi

step "cargo build --release"
cargo build --release

step "cargo test --workspace"
cargo test --workspace -q

# Resume-determinism smoke test: training 2 epochs, checkpointing, and
# resuming for 2 more must be bit-identical to training 4 epochs straight.
# Guards the crash-safety contract (see DESIGN.md "Failure model & recovery").
step "resume-determinism smoke test"
cargo test -q --test resume_determinism

step "all checks passed"
